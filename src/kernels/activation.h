// Activation helpers: float application of fused activations and int8
// lookup-table construction for standalone nonlinearities.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "src/graph/op_types.h"
#include "src/tensor/quant_params.h"

namespace mlexray {

inline float apply_activation_f32(float x, Activation activation) {
  switch (activation) {
    case Activation::kNone: return x;
    case Activation::kRelu: return x > 0.0f ? x : 0.0f;
    case Activation::kRelu6: return std::clamp(x, 0.0f, 6.0f);
    case Activation::kHardSwish: {
      float inner = std::clamp(x + 3.0f, 0.0f, 6.0f);
      return x * inner / 6.0f;
    }
  }
  return x;
}

inline float hardswish_f32(float x) {
  return apply_activation_f32(x, Activation::kHardSwish);
}

inline float sigmoid_f32(float x) { return 1.0f / (1.0f + std::exp(-x)); }

inline float tanh_f32(float x) { return std::tanh(x); }

// Integer clamp bounds implementing a fused activation on a quantized
// output: relu clamps at the zero point, relu6 at round(6/scale)+zp.
struct QuantActivationRange {
  std::int32_t min = -128;
  std::int32_t max = 127;
};

inline QuantActivationRange quant_activation_range(Activation activation,
                                                   float out_scale,
                                                   std::int32_t out_zp) {
  QuantActivationRange r;
  switch (activation) {
    case Activation::kNone:
    case Activation::kHardSwish:  // not clamp-representable; kept separate
      break;
    case Activation::kRelu:
      r.min = std::max<std::int32_t>(r.min, out_zp);
      break;
    case Activation::kRelu6: {
      r.min = std::max<std::int32_t>(r.min, out_zp);
      auto six = static_cast<std::int32_t>(std::lround(6.0f / out_scale)) + out_zp;
      r.max = std::min<std::int32_t>(r.max, six);
      break;
    }
  }
  return r;
}

// Builds the 256-entry int8->int8 table for an arbitrary scalar function,
// honoring the input/output quantization (the standard way edge runtimes
// execute sigmoid/hardswish on integers).
template <typename Fn>
std::array<std::int8_t, 256> build_i8_lut(const QuantParams& in_q,
                                          const QuantParams& out_q, Fn fn) {
  std::array<std::int8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    int q_in = i - 128;
    float real = in_q.scale() * static_cast<float>(q_in - in_q.zero_point());
    float result = fn(real);
    auto q_out = static_cast<std::int32_t>(std::lround(result / out_q.scale())) +
                 out_q.zero_point();
    table[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(std::clamp<std::int32_t>(q_out, -128, 127));
  }
  return table;
}

}  // namespace mlexray
