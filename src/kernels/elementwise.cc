// Int8 elementwise/reduction kernel family — see elementwise.h for the
// design contract, and tests/test_elementwise_grid.cc for the forced-tier
// conformance grid that locks it in.
#include "src/kernels/elementwise.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/kernels/activation.h"
#include "src/kernels/fixed_point.h"
#include "src/kernels/kernel.h"

namespace mlexray {
namespace {

std::atomic<std::uint64_t> g_ew_pack_events{0};
std::atomic<int> g_tier_override{0};  // ElementwiseTier

enum class Tier { kAvx2, kGeneric, kScalar };

Tier best_tier() {
#if defined(__AVX2__)
  return Tier::kAvx2;
#elif defined(__GNUC__) || defined(__clang__)
  return Tier::kGeneric;
#else
  return Tier::kScalar;
#endif
}

Tier resolve_tier() {
  switch (g_tier_override.load(std::memory_order_relaxed)) {
    case static_cast<int>(ElementwiseTier::kScalar):
      return Tier::kScalar;
    case static_cast<int>(ElementwiseTier::kGenericVector):
#if defined(__GNUC__) || defined(__clang__)
      return Tier::kGeneric;
#else
      return Tier::kScalar;
#endif
    default:
      return best_tier();
  }
}

void note_pack_event() {
  g_ew_pack_events.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Packed Q31 parameter blocks (PODs living in PreparedStorage, or copied to
// the stack on the no-plan fallback path — never heap-allocated at invoke).
// ---------------------------------------------------------------------------

// Add/Sub rescale both operands onto a common grid 2^kAddLeftShift finer
// than the larger input scale (the standard TFLite decomposition): each
// operand gets its own Q31 multiplier <= 0.5, the signed sum a third
// multiplier folding the 2^-20 back out. All shifts for the operand
// multipliers are <= 0 by construction; the output shift can go positive
// only under degenerate scale choices and then takes the scalar path.
inline constexpr int kAddLeftShift = 20;

struct PackedEwAddI8 {
  std::int32_t a_mult = 0, b_mult = 0, out_mult = 0;
  std::int32_t a_shift = 0, b_shift = 0, out_shift = 0;  // raw, from prep
  std::int32_t za = 0, zb = 0, zo = 0;
  std::int32_t act_min = -128, act_max = 127;
  std::int32_t broadcast_b = 0;  // 1 => b is [N,1,1,C] over a = [N,H,W,C]
  std::int32_t is_sub = 0;
};

struct PackedEwMulI8 {
  std::int32_t mult = 0;
  std::int32_t shift = 0;  // may be > 0 when sa*sb/so >= 1 (adversarial)
  std::int32_t za = 0, zb = 0, zo = 0;
  std::int32_t broadcast_b = 0;
};

struct PackedEwMeanI8 {
  std::int32_t mult = 0;
  std::int32_t shift = 0;  // folds 1/(H*W); < 0 whenever in/out scales match
  std::int32_t in_zp = 0, out_zp = 0;
};

struct PackedEwLutI8 {
  const std::int8_t* table = nullptr;  // 256 entries, int8 -> int8
};

// ---------------------------------------------------------------------------
// Plan-time builders (also the per-call fallback when ctx.prepared == null).
// Every build bumps elementwise_pack_events().
// ---------------------------------------------------------------------------

PackedEwAddI8 build_packed_add_i8(const KernelContext& ctx) {
  const QuantParams& aq = ctx.input(0).quant();
  const QuantParams& bq = ctx.input(1).quant();
  const QuantParams& oq = ctx.output->quant();
  PackedEwAddI8 p;
  const double sa = aq.scale();
  const double sb = bq.scale();
  const double so = oq.scale();
  const double twice_max = 2.0 * std::max(sa, sb);
  int shift = 0;
  quantize_multiplier(sa / twice_max, &p.a_mult, &shift);
  p.a_shift = shift;
  quantize_multiplier(sb / twice_max, &p.b_mult, &shift);
  p.b_shift = shift;
  quantize_multiplier_any(
      twice_max / (static_cast<double>(1 << kAddLeftShift) * so), &p.out_mult,
      &shift);
  p.out_shift = shift;
  p.za = aq.zero_point();
  p.zb = bq.zero_point();
  p.zo = oq.zero_point();
  const QuantActivationRange range = quant_activation_range(
      ctx.node->attrs.activation, oq.scale(), oq.zero_point());
  p.act_min = range.min;
  p.act_max = range.max;
  p.broadcast_b = ctx.input(0).shape() == ctx.input(1).shape() ? 0 : 1;
  p.is_sub = ctx.node->type == OpType::kSub ? 1 : 0;
  note_pack_event();
  return p;
}

PackedEwMulI8 build_packed_mul_i8(const KernelContext& ctx) {
  const QuantParams& aq = ctx.input(0).quant();
  const QuantParams& bq = ctx.input(1).quant();
  const QuantParams& oq = ctx.output->quant();
  PackedEwMulI8 p;
  int shift = 0;
  quantize_multiplier_any(
      static_cast<double>(aq.scale()) * bq.scale() / oq.scale(), &p.mult,
      &shift);
  p.shift = shift;
  p.za = aq.zero_point();
  p.zb = bq.zero_point();
  p.zo = oq.zero_point();
  p.broadcast_b = ctx.input(0).shape() == ctx.input(1).shape() ? 0 : 1;
  note_pack_event();
  return p;
}

PackedEwMeanI8 build_packed_mean_i8(const KernelContext& ctx) {
  const QuantParams& iq = ctx.input(0).quant();
  const QuantParams& oq = ctx.output->quant();
  const Shape& is = ctx.input(0).shape();
  const std::int64_t hw = is.dim(1) * is.dim(2);
  // The integer sum of hw (x - zp) terms must stay in int32.
  MLX_CHECK_LT(hw, std::int64_t{1} << 23);
  PackedEwMeanI8 p;
  int shift = 0;
  quantize_multiplier_any(static_cast<double>(iq.scale()) / oq.scale() /
                              static_cast<double>(hw),
                          &p.mult, &shift);
  p.shift = shift;
  p.in_zp = iq.zero_point();
  p.out_zp = oq.zero_point();
  note_pack_event();
  return p;
}

template <typename Packed, Packed (*kBuild)(const KernelContext&)>
void ew_prepare(const KernelContext& ctx) {
  auto* root = ctx.prepared->allocate_array<Packed>(1);
  *root = kBuild(ctx);
  ctx.prepared->set_root(root);
}

template <typename Packed, Packed (*kBuild)(const KernelContext&)>
Packed packed_of(const KernelContext& ctx) {
  if (ctx.prepared != nullptr) return *ctx.prepared->root<Packed>();
  return kBuild(ctx);  // no plan (e.g. bare-context invoke): build per call
}

// ---------------------------------------------------------------------------
// Tier-specific int8 -> int32 widening loads. The arithmetic after the load
// is shared (GNU vectors), so tiers can only differ in how lanes get into
// registers — which is exactly what keeps them trivially bit-identical.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)

using v8s8_ew = std::int8_t __attribute__((vector_size(8), aligned(1)));

inline v8s32_fx load_widen_generic(const std::int8_t* p) {
  v8s8_ew b;
  __builtin_memcpy(&b, p, sizeof(b));
  return __builtin_convertvector(b, v8s32_fx);
}

#if defined(__AVX2__)
inline v8s32_fx load_widen_avx2(const std::int8_t* p) {
  const __m256i w = _mm256_cvtepi8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  v8s32_fx out;
  __builtin_memcpy(&out, &w, sizeof(out));
  return out;
}
#endif  // __AVX2__

#endif  // __GNUC__ || __clang__

// ---------------------------------------------------------------------------
// Add / Sub.
// ---------------------------------------------------------------------------

inline std::int8_t add_emit_scalar(const PackedEwAddI8& p, std::int8_t a,
                                   std::int8_t b) {
  const std::int32_t av =
      (static_cast<std::int32_t>(a) - p.za) * (1 << kAddLeftShift);
  const std::int32_t bv =
      (static_cast<std::int32_t>(b) - p.zb) * (1 << kAddLeftShift);
  const std::int32_t as =
      multiply_by_quantized_multiplier(av, p.a_mult, p.a_shift);
  const std::int32_t bs =
      multiply_by_quantized_multiplier(bv, p.b_mult, p.b_shift);
  const std::int32_t acc = p.is_sub != 0 ? as - bs : as + bs;
  const std::int32_t q =
      multiply_by_quantized_multiplier_any(acc, p.out_mult, p.out_shift) +
      p.zo;
  return static_cast<std::int8_t>(std::clamp(q, p.act_min, p.act_max));
}

// A span is `len` contiguous elements of a and y with a (possibly shorter-
// strided) contiguous b: the same-shape path runs one whole-tensor span, the
// broadcast path one span per pixel against the shared [N,1,1,C] row.
using AddSpanFn = void (*)(const PackedEwAddI8&, const std::int8_t*,
                           const std::int8_t*, std::int8_t*, std::int64_t);

void add_span_scalar(const PackedEwAddI8& p, const std::int8_t* a,
                     const std::int8_t* b, std::int8_t* y, std::int64_t len) {
  for (std::int64_t i = 0; i < len; ++i) y[i] = add_emit_scalar(p, a[i], b[i]);
}

#if defined(__GNUC__) || defined(__clang__)
// Requires p.out_shift <= 0 (the select below routes positive shifts to the
// scalar span on every tier).
template <v8s32_fx (*kLoad)(const std::int8_t*)>
void add_span_vec(const PackedEwAddI8& p, const std::int8_t* a,
                  const std::int8_t* b, std::int8_t* y, std::int64_t len) {
  const v8s32_fx za_v = (v8s32_fx){} + p.za;
  const v8s32_fx zb_v = (v8s32_fx){} + p.zb;
  const v8s32_fx am_v = (v8s32_fx){} + p.a_mult;
  const v8s32_fx ae_v = (v8s32_fx){} + (-p.a_shift);
  const v8s32_fx bm_v = (v8s32_fx){} + p.b_mult;
  const v8s32_fx be_v = (v8s32_fx){} + (-p.b_shift);
  const v8s32_fx om_v = (v8s32_fx){} + p.out_mult;
  const v8s32_fx oe_v = (v8s32_fx){} + (-p.out_shift);
  std::int64_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const v8s32_fx av = (kLoad(a + i) - za_v) << kAddLeftShift;
    const v8s32_fx bv = (kLoad(b + i) - zb_v) << kAddLeftShift;
    const v8s32_fx as = multiply_by_quantized_multiplier_v8(av, am_v, ae_v);
    const v8s32_fx bs = multiply_by_quantized_multiplier_v8(bv, bm_v, be_v);
    const v8s32_fx acc = p.is_sub != 0 ? as - bs : as + bs;
    requant_clamp_store_i8_v8(acc, om_v, oe_v, p.zo, p.act_min, p.act_max,
                              y + i);
  }
  for (; i < len; ++i) y[i] = add_emit_scalar(p, a[i], b[i]);
}
#endif

AddSpanFn select_add_span(Tier tier) {
  switch (tier) {
#if defined(__AVX2__)
    case Tier::kAvx2:
      return add_span_vec<load_widen_avx2>;
#endif
#if defined(__GNUC__) || defined(__clang__)
    case Tier::kGeneric:
      return add_span_vec<load_widen_generic>;
#endif
    default:
      return add_span_scalar;
  }
}

void addsub_i8_opt(const KernelContext& ctx) {
  const PackedEwAddI8 p =
      packed_of<PackedEwAddI8, build_packed_add_i8>(ctx);
  const Tensor& a = ctx.input(0);
  const Tensor& b = ctx.input(1);
  const std::int8_t* pa = a.data<std::int8_t>();
  const std::int8_t* pb = b.data<std::int8_t>();
  std::int8_t* y = ctx.output->data<std::int8_t>();
  const AddSpanFn span =
      select_add_span(p.out_shift > 0 ? Tier::kScalar : resolve_tier());
  if (p.broadcast_b == 0) {
    span(p, pa, pb, y, ctx.output->num_elements());
    return;
  }
  const Shape& as = a.shape();
  const std::int64_t hw = as.dim(1) * as.dim(2);
  const std::int64_t ch = as.dim(3);
  for (std::int64_t n = 0; n < as.dim(0); ++n) {
    const std::int8_t* brow = pb + n * ch;
    for (std::int64_t px = 0; px < hw; ++px) {
      const std::int64_t off = (n * hw + px) * ch;
      span(p, pa + off, brow, y + off, ch);
    }
  }
}

// ---------------------------------------------------------------------------
// Mul (zero-point-free product, single Q31 requant; matches the reference
// kernel's plain int8 clamp — kMul carries no fused activation).
// ---------------------------------------------------------------------------

inline std::int8_t mul_emit_scalar(const PackedEwMulI8& p, std::int8_t a,
                                   std::int8_t b) {
  const std::int32_t acc = (static_cast<std::int32_t>(a) - p.za) *
                           (static_cast<std::int32_t>(b) - p.zb);
  const std::int32_t q =
      multiply_by_quantized_multiplier_any(acc, p.mult, p.shift) + p.zo;
  return clamp_to_i8(q);
}

using MulSpanFn = void (*)(const PackedEwMulI8&, const std::int8_t*,
                           const std::int8_t*, std::int8_t*, std::int64_t);

void mul_span_scalar(const PackedEwMulI8& p, const std::int8_t* a,
                     const std::int8_t* b, std::int8_t* y, std::int64_t len) {
  for (std::int64_t i = 0; i < len; ++i) y[i] = mul_emit_scalar(p, a[i], b[i]);
}

#if defined(__GNUC__) || defined(__clang__)
// Requires p.shift <= 0.
template <v8s32_fx (*kLoad)(const std::int8_t*)>
void mul_span_vec(const PackedEwMulI8& p, const std::int8_t* a,
                  const std::int8_t* b, std::int8_t* y, std::int64_t len) {
  const v8s32_fx za_v = (v8s32_fx){} + p.za;
  const v8s32_fx zb_v = (v8s32_fx){} + p.zb;
  const v8s32_fx m_v = (v8s32_fx){} + p.mult;
  const v8s32_fx e_v = (v8s32_fx){} + (-p.shift);
  std::int64_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const v8s32_fx acc = (kLoad(a + i) - za_v) * (kLoad(b + i) - zb_v);
    requant_clamp_store_i8_v8(acc, m_v, e_v, p.zo, -128, 127, y + i);
  }
  for (; i < len; ++i) y[i] = mul_emit_scalar(p, a[i], b[i]);
}
#endif

MulSpanFn select_mul_span(Tier tier) {
  switch (tier) {
#if defined(__AVX2__)
    case Tier::kAvx2:
      return mul_span_vec<load_widen_avx2>;
#endif
#if defined(__GNUC__) || defined(__clang__)
    case Tier::kGeneric:
      return mul_span_vec<load_widen_generic>;
#endif
    default:
      return mul_span_scalar;
  }
}

void mul_i8_opt(const KernelContext& ctx) {
  const PackedEwMulI8 p = packed_of<PackedEwMulI8, build_packed_mul_i8>(ctx);
  const Tensor& a = ctx.input(0);
  const Tensor& b = ctx.input(1);
  const std::int8_t* pa = a.data<std::int8_t>();
  const std::int8_t* pb = b.data<std::int8_t>();
  std::int8_t* y = ctx.output->data<std::int8_t>();
  const MulSpanFn span =
      select_mul_span(p.shift > 0 ? Tier::kScalar : resolve_tier());
  if (p.broadcast_b == 0) {
    span(p, pa, pb, y, ctx.output->num_elements());
    return;
  }
  const Shape& as = a.shape();
  const std::int64_t hw = as.dim(1) * as.dim(2);
  const std::int64_t ch = as.dim(3);
  for (std::int64_t n = 0; n < as.dim(0); ++n) {
    const std::int8_t* brow = pb + n * ch;
    for (std::int64_t px = 0; px < hw; ++px) {
      const std::int64_t off = (n * hw + px) * ch;
      span(p, pa + off, brow, y + off, ch);
    }
  }
}

// ---------------------------------------------------------------------------
// Mean: exact integer sum over H*W per (batch, channel), one fixed-point
// rounding through a multiplier that folds in/(out*hw). The reference kernel
// instead rounds a double mean and rescales — the single rounding here is
// what "exact fixed-point averaging" means.
// ---------------------------------------------------------------------------

using MeanFn = void (*)(const PackedEwMeanI8&, const std::int8_t*,
                        std::int64_t, std::int64_t, std::int8_t*);

void mean_scalar(const PackedEwMeanI8& p, const std::int8_t* x,
                 std::int64_t hw, std::int64_t ch, std::int8_t* y) {
  for (std::int64_t c = 0; c < ch; ++c) {
    std::int32_t acc = 0;
    for (std::int64_t px = 0; px < hw; ++px) {
      acc += static_cast<std::int32_t>(x[px * ch + c]);
    }
    acc -= static_cast<std::int32_t>(hw) * p.in_zp;
    const std::int32_t q =
        multiply_by_quantized_multiplier_any(acc, p.mult, p.shift) + p.out_zp;
    y[c] = clamp_to_i8(q);
  }
}

#if defined(__GNUC__) || defined(__clang__)
// Requires p.shift <= 0 (always true when the output inherits the input
// quantization, since the multiplier then is exactly 1/hw).
template <v8s32_fx (*kLoad)(const std::int8_t*)>
void mean_vec(const PackedEwMeanI8& p, const std::int8_t* x, std::int64_t hw,
              std::int64_t ch, std::int8_t* y) {
  const v8s32_fx m_v = (v8s32_fx){} + p.mult;
  const v8s32_fx e_v = (v8s32_fx){} + (-p.shift);
  const v8s32_fx init_v =
      (v8s32_fx){} - static_cast<std::int32_t>(hw) * p.in_zp;
  std::int64_t c = 0;
  for (; c + 8 <= ch; c += 8) {
    v8s32_fx acc = init_v;
    for (std::int64_t px = 0; px < hw; ++px) {
      acc += kLoad(x + px * ch + c);
    }
    requant_clamp_store_i8_v8(acc, m_v, e_v, p.out_zp, -128, 127, y + c);
  }
  if (c < ch) {
    // Channel tail: scalar, same integer math (exact, order-free).
    for (; c < ch; ++c) {
      std::int32_t acc = 0;
      for (std::int64_t px = 0; px < hw; ++px) {
        acc += static_cast<std::int32_t>(x[px * ch + c]);
      }
      acc -= static_cast<std::int32_t>(hw) * p.in_zp;
      const std::int32_t q =
          multiply_by_quantized_multiplier_any(acc, p.mult, p.shift) +
          p.out_zp;
      y[c] = clamp_to_i8(q);
    }
  }
}
#endif

MeanFn select_mean(Tier tier) {
  switch (tier) {
#if defined(__AVX2__)
    case Tier::kAvx2:
      return mean_vec<load_widen_avx2>;
#endif
#if defined(__GNUC__) || defined(__clang__)
    case Tier::kGeneric:
      return mean_vec<load_widen_generic>;
#endif
    default:
      return mean_scalar;
  }
}

void mean_i8_opt(const KernelContext& ctx) {
  const PackedEwMeanI8 p =
      packed_of<PackedEwMeanI8, build_packed_mean_i8>(ctx);
  const Tensor& in = ctx.input(0);
  const Shape& is = in.shape();
  const std::int64_t hw = is.dim(1) * is.dim(2);
  const std::int64_t ch = is.dim(3);
  const std::int8_t* x = in.data<std::int8_t>();
  std::int8_t* y = ctx.output->data<std::int8_t>();
  const MeanFn mean = select_mean(p.shift > 0 ? Tier::kScalar : resolve_tier());
  for (std::int64_t n = 0; n < is.dim(0); ++n) {
    mean(p, x + n * hw * ch, hw, ch, y + n * ch);
  }
}

// ---------------------------------------------------------------------------
// LUT activations (Logistic / HardSwish / Tanh). The table is built with the
// same build_i8_lut the reference kernels use — so the optimized path is
// bit-exact with reference (0 quanta) — but at plan time, into
// PreparedStorage, instead of 256 expf/lround calls per invoke. The lookup
// loop is byte arithmetic with no tier-divergent math, so it is identical on
// every tier by construction.
// ---------------------------------------------------------------------------

template <float (*Fn)(float)>
const std::int8_t* build_lut_into(const KernelContext& ctx,
                                  std::int8_t* dst) {
  const auto table =
      build_i8_lut(ctx.input(0).quant(), ctx.output->quant(), Fn);
  std::memcpy(dst, table.data(), table.size());
  note_pack_event();
  return dst;
}

template <float (*Fn)(float)>
void ew_lut_prepare(const KernelContext& ctx) {
  auto* root = ctx.prepared->allocate_array<PackedEwLutI8>(1);
  auto* table = ctx.prepared->allocate_array<std::int8_t>(256);
  root->table = build_lut_into<Fn>(ctx, table);
  ctx.prepared->set_root(root);
}

template <float (*Fn)(float)>
void ew_lut_i8_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const std::int8_t* table;
  if (ctx.prepared != nullptr) {
    table = ctx.prepared->root<PackedEwLutI8>()->table;
  } else {
    table = build_lut_into<Fn>(ctx, ctx.scratch<std::int8_t>(256));
  }
  const std::int8_t* src = in.data<std::int8_t>();
  std::int8_t* dst = ctx.output->data<std::int8_t>();
  const std::int64_t n = in.num_elements();
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = table[static_cast<std::size_t>(static_cast<int>(src[i]) + 128)];
  }
}

}  // namespace

void set_elementwise_tier_for_testing(ElementwiseTier tier) {
  g_tier_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

const char* elementwise_best_tier_name() {
  switch (best_tier()) {
    case Tier::kAvx2: return "avx2";
    case Tier::kGeneric: return "generic-vector";
    case Tier::kScalar: return "scalar";
  }
  return "scalar";
}

std::uint64_t elementwise_pack_events() {
  return g_ew_pack_events.load(std::memory_order_relaxed);
}

void register_elementwise_i8_kernels(KernelMap& map) {
  map[{OpType::kAdd, true}] = {
      addsub_i8_opt, ew_prepare<PackedEwAddI8, build_packed_add_i8>};
  map[{OpType::kSub, true}] = {
      addsub_i8_opt, ew_prepare<PackedEwAddI8, build_packed_add_i8>};
  map[{OpType::kMul, true}] = {
      mul_i8_opt, ew_prepare<PackedEwMulI8, build_packed_mul_i8>};
  map[{OpType::kMean, true}] = {
      mean_i8_opt, ew_prepare<PackedEwMeanI8, build_packed_mean_i8>};
  map[{OpType::kSigmoid, true}] = {ew_lut_i8_opt<sigmoid_f32>,
                                   ew_lut_prepare<sigmoid_f32>};
  map[{OpType::kHardSwish, true}] = {ew_lut_i8_opt<hardswish_f32>,
                                     ew_lut_prepare<hardswish_f32>};
  map[{OpType::kTanh, true}] = {ew_lut_i8_opt<tanh_f32>,
                                ew_lut_prepare<tanh_f32>};
}

}  // namespace mlexray
