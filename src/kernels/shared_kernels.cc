#include "src/kernels/shared_kernels.h"

#include <cmath>
#include <cstring>

#include "src/kernels/activation.h"

namespace mlexray {
namespace {

void reshape_kernel(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  MLX_CHECK_EQ(in.byte_size(), ctx.output->byte_size());
  std::memcpy(ctx.output->raw_data(), in.raw_data(), in.byte_size());
}

// Concat along the innermost (channel) axis; inputs may need requantization
// to the common output scale in the int8 path.
template <typename T>
void concat_impl(const KernelContext& ctx, bool requant) {
  Tensor& out = *ctx.output;
  const Shape& os = out.shape();
  std::int64_t outer = 1;
  for (int d = 0; d < os.rank() - 1; ++d) outer *= os.dim(d);
  std::int64_t out_ch = os.dim(os.rank() - 1);
  T* dst = out.data<T>();

  std::int64_t ch_offset = 0;
  for (const Tensor* in : ctx.inputs) {
    const Shape& is = in->shape();
    std::int64_t in_ch = is.dim(is.rank() - 1);
    const T* src = in->data<T>();
    for (std::int64_t row = 0; row < outer; ++row) {
      T* d = dst + row * out_ch + ch_offset;
      const T* s = src + row * in_ch;
      if (!requant) {
        std::memcpy(d, s, static_cast<std::size_t>(in_ch) * sizeof(T));
      } else {
        const float in_scale = in->quant().scale();
        const std::int32_t in_zp = in->quant().zero_point();
        const float out_scale = out.quant().scale();
        const std::int32_t out_zp = out.quant().zero_point();
        for (std::int64_t c = 0; c < in_ch; ++c) {
          float real = in_scale * static_cast<float>(s[c] - in_zp);
          auto q = static_cast<std::int32_t>(std::lround(real / out_scale)) + out_zp;
          d[c] = static_cast<T>(std::clamp<std::int32_t>(q, -128, 127));
        }
      }
    }
    ch_offset += in_ch;
  }
}

void concat_f32(const KernelContext& ctx) { concat_impl<float>(ctx, false); }
void concat_i8(const KernelContext& ctx) {
  concat_impl<std::int8_t>(ctx, true);
}

void embedding_kernel(const KernelContext& ctx) {
  const Tensor& ids = ctx.input(0);  // [N, L] i32
  const Tensor& table = ctx.node->weights[0];
  const std::int32_t* id_data = ids.data<std::int32_t>();
  const float* tab = table.data<float>();
  float* out = ctx.output->data<float>();
  const std::int64_t vocab = table.shape().dim(0);
  const std::int64_t dim = table.shape().dim(1);
  const std::int64_t count = ids.num_elements();
  for (std::int64_t i = 0; i < count; ++i) {
    std::int64_t id = id_data[i];
    MLX_CHECK(id >= 0 && id < vocab) << "token id out of range: " << id;
    std::memcpy(out + i * dim, tab + id * dim,
                static_cast<std::size_t>(dim) * sizeof(float));
  }
}

template <typename T>
void upsample2x_impl(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Shape& is = in.shape();
  const std::int64_t n = is.dim(0), h = is.dim(1), w = is.dim(2), c = is.dim(3);
  const T* src = in.data<T>();
  T* dst = ctx.output->data<T>();
  const std::int64_t ow = w * 2;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        const T* s = src + ((b * h + y) * w + x) * c;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            T* d = dst + ((b * h * 2 + y * 2 + dy) * ow + x * 2 + dx) * c;
            std::memcpy(d, s, static_cast<std::size_t>(c) * sizeof(T));
          }
        }
      }
    }
  }
}

void batch_norm_f32(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const float* gamma = node.weights[0].data<float>();
  const float* beta = node.weights[1].data<float>();
  const float* mean = node.weights[2].data<float>();
  const float* var = node.weights[3].data<float>();
  const Shape& is = in.shape();
  const std::int64_t ch = is.dim(is.rank() - 1);
  const std::int64_t outer = is.num_elements() / ch;
  const float* src = in.data<float>();
  float* dst = ctx.output->data<float>();
  for (std::int64_t row = 0; row < outer; ++row) {
    for (std::int64_t c = 0; c < ch; ++c) {
      float inv = 1.0f / std::sqrt(var[c] + node.attrs.epsilon);
      dst[row * ch + c] = gamma[c] * (src[row * ch + c] - mean[c]) * inv + beta[c];
    }
  }
}

void quantize_kernel(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  Tensor& out = *ctx.output;
  const float scale = out.quant().scale();
  const std::int32_t zp = out.quant().zero_point();
  const float* src = in.data<float>();
  std::int8_t* dst = out.data<std::int8_t>();
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    auto q = static_cast<std::int32_t>(std::lround(src[i] / scale)) + zp;
    dst[i] = static_cast<std::int8_t>(std::clamp<std::int32_t>(q, -128, 127));
  }
}

void dequantize_kernel(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const float scale = in.quant().scale();
  const std::int32_t zp = in.quant().zero_point();
  const std::int8_t* src = in.data<std::int8_t>();
  float* dst = ctx.output->data<float>();
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    dst[i] = scale * static_cast<float>(src[i] - zp);
  }
}

void softmax_f32(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Shape& is = in.shape();
  const std::int64_t ch = is.dim(is.rank() - 1);
  const std::int64_t rows = is.num_elements() / ch;
  const float* src = in.data<float>();
  float* dst = ctx.output->data<float>();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = src + r * ch;
    float* y = dst + r * ch;
    float max_v = x[0];
    for (std::int64_t c = 1; c < ch; ++c) max_v = std::max(max_v, x[c]);
    float sum = 0.0f;
    for (std::int64_t c = 0; c < ch; ++c) {
      y[c] = std::exp(x[c] - max_v);
      sum += y[c];
    }
    for (std::int64_t c = 0; c < ch; ++c) y[c] /= sum;
  }
}

// int8 softmax: dequantize row, float softmax, requantize with output params.
void softmax_i8(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const std::int64_t ch = is.dim(is.rank() - 1);
  const std::int64_t rows = is.num_elements() / ch;
  const float in_scale = in.quant().scale();
  const std::int32_t in_zp = in.quant().zero_point();
  const float out_scale = out.quant().scale();
  const std::int32_t out_zp = out.quant().zero_point();
  const std::int8_t* src = in.data<std::int8_t>();
  std::int8_t* dst = out.data<std::int8_t>();
  float* row = ctx.scratch<float>(ch);
  for (std::int64_t r = 0; r < rows; ++r) {
    float max_v = -1e30f;
    for (std::int64_t c = 0; c < ch; ++c) {
      row[static_cast<std::size_t>(c)] =
          in_scale * static_cast<float>(src[r * ch + c] - in_zp);
      max_v = std::max(max_v, row[static_cast<std::size_t>(c)]);
    }
    float sum = 0.0f;
    for (std::int64_t c = 0; c < ch; ++c) {
      row[static_cast<std::size_t>(c)] = std::exp(row[static_cast<std::size_t>(c)] - max_v);
      sum += row[static_cast<std::size_t>(c)];
    }
    for (std::int64_t c = 0; c < ch; ++c) {
      float p = row[static_cast<std::size_t>(c)] / sum;
      auto q = static_cast<std::int32_t>(std::lround(p / out_scale)) + out_zp;
      dst[r * ch + c] = static_cast<std::int8_t>(std::clamp<std::int32_t>(q, -128, 127));
    }
  }
}

template <Activation kAct>
void activation_f32(const KernelContext& ctx) {
  const float* src = ctx.input(0).data<float>();
  float* dst = ctx.output->data<float>();
  for (std::int64_t i = 0; i < ctx.input(0).num_elements(); ++i) {
    dst[i] = apply_activation_f32(src[i], kAct);
  }
}

void sigmoid_f32_kernel(const KernelContext& ctx) {
  const float* src = ctx.input(0).data<float>();
  float* dst = ctx.output->data<float>();
  for (std::int64_t i = 0; i < ctx.input(0).num_elements(); ++i) {
    dst[i] = sigmoid_f32(src[i]);
  }
}

void tanh_f32_kernel(const KernelContext& ctx) {
  const float* src = ctx.input(0).data<float>();
  float* dst = ctx.output->data<float>();
  for (std::int64_t i = 0; i < ctx.input(0).num_elements(); ++i) {
    dst[i] = tanh_f32(src[i]);
  }
}

// int8 relu/relu6: clamp against the (shared) scale's activation range.
template <Activation kAct>
void relu_i8(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  Tensor& out = *ctx.output;
  QuantActivationRange range = quant_activation_range(
      kAct, out.quant().scale(), out.quant().zero_point());
  const std::int8_t* src = in.data<std::int8_t>();
  std::int8_t* dst = out.data<std::int8_t>();
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    dst[i] = static_cast<std::int8_t>(
        std::clamp<std::int32_t>(src[i], range.min, range.max));
  }
}

// int8 hardswish / sigmoid via 256-entry lookup table.
template <float (*Fn)(float)>
void lut_i8(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  Tensor& out = *ctx.output;
  auto table = build_i8_lut(in.quant(), out.quant(), Fn);
  const std::int8_t* src = in.data<std::int8_t>();
  std::int8_t* dst = out.data<std::int8_t>();
  for (std::int64_t i = 0; i < in.num_elements(); ++i) {
    dst[i] = table[static_cast<std::size_t>(static_cast<int>(src[i]) + 128)];
  }
}

}  // namespace

void register_shared_kernels(KernelMap& map) {
  map[{OpType::kReshape, false}] = reshape_kernel;
  map[{OpType::kReshape, true}] = reshape_kernel;
  map[{OpType::kConcat, false}] = concat_f32;
  map[{OpType::kConcat, true}] = concat_i8;
  map[{OpType::kEmbedding, false}] = embedding_kernel;
  map[{OpType::kUpsampleNearest2x, false}] = upsample2x_impl<float>;
  map[{OpType::kUpsampleNearest2x, true}] = upsample2x_impl<std::int8_t>;
  map[{OpType::kBatchNorm, false}] = batch_norm_f32;
  map[{OpType::kQuantize, true}] = quantize_kernel;
  map[{OpType::kDequantize, true}] = dequantize_kernel;
  map[{OpType::kSoftmax, false}] = softmax_f32;
  map[{OpType::kSoftmax, true}] = softmax_i8;
  map[{OpType::kRelu, false}] = activation_f32<Activation::kRelu>;
  map[{OpType::kRelu6, false}] = activation_f32<Activation::kRelu6>;
  map[{OpType::kHardSwish, false}] = activation_f32<Activation::kHardSwish>;
  map[{OpType::kSigmoid, false}] = sigmoid_f32_kernel;
  map[{OpType::kTanh, false}] = tanh_f32_kernel;
  map[{OpType::kRelu, true}] = relu_i8<Activation::kRelu>;
  map[{OpType::kRelu6, true}] = relu_i8<Activation::kRelu6>;
  map[{OpType::kHardSwish, true}] = lut_i8<hardswish_f32>;
  map[{OpType::kSigmoid, true}] = lut_i8<sigmoid_f32>;
  map[{OpType::kTanh, true}] = lut_i8<tanh_f32>;
}

}  // namespace mlexray
