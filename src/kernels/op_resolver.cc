#include "src/kernels/op_resolver.h"

#include "src/kernels/opt_kernels.h"
#include "src/kernels/ref_kernels.h"

namespace mlexray {

bool OpResolver::is_quantized_node(const Node& node) {
  if (node.type == OpType::kQuantize || node.type == OpType::kDequantize) {
    return true;
  }
  return node.output_dtype == DType::kI8;
}

const KernelEntry& OpResolver::find(const Node& node) const {
  KernelKey key{node.type, is_quantized_node(node)};
  auto it = map_.find(key);
  MLX_CHECK(it != map_.end())
      << name() << " has no kernel for " << op_type_name(node.type)
      << (key.quantized ? " (int8)" : " (f32)");
  return it->second;
}

BuiltinOpResolver::BuiltinOpResolver(KernelBugConfig bugs) {
  register_shared_kernels(map_);
  // Reference implementations first: ops without an optimized variant
  // (pools f32, mean, add, mul) fall back to these.
  register_ref_float_kernels(map_);
  register_ref_quant_kernels(map_, /*emulate_avgpool_bug=*/false);
  // Optimized overrides.
  register_opt_float_kernels(map_);
  register_opt_quant_kernels(map_, bugs.optimized_dwconv_int16_overflow);
}

RefOpResolver::RefOpResolver(KernelBugConfig bugs) {
  register_shared_kernels(map_);
  register_ref_float_kernels(map_);
  register_ref_quant_kernels(map_, bugs.reference_avgpool_bad_shift);
}

}  // namespace mlexray
