// Register-blocked, multi-threaded GEMM core shared by the optimized
// convolution (via im2col) and fully-connected kernels.
//
// Both consumers present the same "NT" problem: A holds M rows of K
// contiguous values (im2col patches or flattened input rows), B holds N rows
// of K contiguous values (OHWI filters or [out, in] weights), and
// C[i, j] = act(dot(A_i, B_j) + bias[j]).
//
// The inner loops compute an MR x NR register tile: each loaded A/B value
// feeds NR/MR multiply-accumulates, cutting memory traffic by the tile
// factor, and the 16 independent accumulators break the loop-carried
// dependence that serializes a naive dot product on the FPU's add latency.
//
// Float accumulation is bias-first then k-ascending per output — exactly the
// reference kernels' order — so optimized and reference float paths agree to
// within FMA-contraction rounding (0-1 ULP; identical ordering, only the
// compiler's mul+add fusion choices differ), which the parity tests assert.
// Integer accumulation is exact and order-free. Rows of C are partitioned
// across the ThreadPool in tile-sized chunks with no per-call heap
// allocation.
#pragma once

#include <cstdint>

#include "src/common/thread_pool.h"
#include "src/graph/op_types.h"
#include "src/tensor/scratch_arena.h"

namespace mlexray {

// C[m x n] (row stride ldc) = act(A[m x k] (lda) * B[n x k]^T (ldb) + bias).
// bias has n entries and must be non-null.
//
// When `arena` is non-null and m is large enough to amortize it, B is
// repacked into NR-interleaved panels (scratch memory, no heap) so the inner
// loop vectorizes across the NR output columns — SIMD across outputs keeps
// each individual output's bias-first k-ascending accumulation order intact.
void gemm_f32_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, const float* bias, Activation act, float* c,
                 std::int64_t ldc, ThreadPool* pool, ScratchArena* arena);

// Fused requantization parameters for the int8 path (per-output-channel
// multiplier/shift tables, gemmlowp-style).
struct GemmQuant {
  std::int32_t a_zero_point = 0;
  const std::int32_t* bias = nullptr;         // [n]
  const std::int32_t* multipliers = nullptr;  // [n]
  const int* shifts = nullptr;                // [n]
  std::int32_t out_zero_point = 0;
  std::int32_t act_min = -128;
  std::int32_t act_max = 127;
};

// C[m x n] int8 = requant(sum_k (A[i,k] - a_zp) * B[j,k] + bias[j]).
void gemm_i8_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                std::int64_t ldb, const GemmQuant& q, std::int8_t* c,
                std::int64_t ldc, ThreadPool* pool);

}  // namespace mlexray
