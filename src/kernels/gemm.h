// Register-blocked, multi-threaded GEMM core shared by the optimized
// convolution (via im2col) and fully-connected kernels.
//
// Both consumers present the same "NT" problem: A holds M rows of K
// contiguous values (im2col patches or flattened input rows), B holds N rows
// of K contiguous values (OHWI filters or [out, in] weights), and
// C[i, j] = act(dot(A_i, B_j) + bias[j]).
//
// The inner loops compute an MR x NR register tile: each loaded A/B value
// feeds NR/MR multiply-accumulates, cutting memory traffic by the tile
// factor, and the 16 independent accumulators break the loop-carried
// dependence that serializes a naive dot product on the FPU's add latency.
//
// Float accumulation is bias-first then k-ascending per output — exactly the
// reference kernels' order — so optimized and reference float paths agree to
// within FMA-contraction rounding (0-1 ULP; identical ordering, only the
// compiler's mul+add fusion choices differ), which the parity tests assert.
// Integer accumulation is exact and order-free. Rows of C are partitioned
// across the ThreadPool in tile-sized chunks with no per-call heap
// allocation.
#pragma once

#include <cstdint>

#include "src/common/thread_pool.h"
#include "src/graph/op_types.h"
#include "src/tensor/scratch_arena.h"

namespace mlexray {

// ---------------------------------------------------------------------------
// Plan-time B prepacking.
//
// B is constant for both GEMM consumers (conv filters, FC weights), so the
// panel layout the inner loops want can be built once at Prepare time and
// reused by every invoke. The packed views below are plain pointers into
// plan-owned storage; pass them to the gemm entry points to skip the
// per-call repack entirely.
// ---------------------------------------------------------------------------

// Panel widths (NR) of the register tiles. Exposed so prepare hooks can size
// packed buffers; must match the kernels' internal tiling.
inline constexpr std::int64_t kGemmNrF32 = 8;
inline constexpr std::int64_t kGemmNrI8 = 16;

// f32: full panels of kGemmNrF32 columns, k-interleaved — panel p holds k
// groups of the 8 column values for columns [8p, 8p+8). The n % 8 edge
// columns stay unpacked (the edge tile walks raw B rows).
struct PackedBF32 {
  const float* panels = nullptr;
  std::int64_t panel_count = 0;  // n / kGemmNrF32
};

// int8: pair-interleaved, pre-widened panels of kGemmNrI8 (16) columns.
// Panel p covers columns [16p, 16p + 16); its memory is k2-major: for each
// pair of k steps it holds 16 columns x 2 consecutive k values as int16
// (64 bytes — exactly the operand shape the widening multiply-pairs-and-add
// instruction (vpmaddwd) consumes, with the matching A operand being one
// broadcast 32-bit (a[2k], a[2k+1]) pair). Columns beyond n and the odd-k
// tail entry are zero-filled, so the last panel needs no edge path and an
// odd k contributes an exact zero. Per-column sums over the real k for all
// n columns fold the activation zero point into the epilogue —
// sum_k (a - zp) * b == sum_k a * b - zp * col_sum — so the inner loop is a
// raw dot product with no per-element correction and, crucially, no
// horizontal reduction: each output column owns one int32 accumulator lane.
struct PackedBI8 {
  const std::int8_t* panels = nullptr;     // int16 data; 64-byte aligned
  const std::int32_t* col_sums = nullptr;  // [n]
};

// Sizing for the pack destinations: f32 element count, int8 byte count
// (pair-interleaved int16 panels, padded columns included — the kernel
// derives panel indexing from n alone).
std::int64_t packed_b_f32_floats(std::int64_t n, std::int64_t k);
std::int64_t packed_b_i8_bytes(std::int64_t n, std::int64_t k);

// Pack B[n x k] (row stride ldb) into the layouts above. col_sums gets all n
// column sums.
void pack_b_f32(std::int64_t n, std::int64_t k, const float* b,
                std::int64_t ldb, float* panels);
void pack_b_i8(std::int64_t n, std::int64_t k, const std::int8_t* b,
               std::int64_t ldb, std::int8_t* panels, std::int32_t* col_sums);

// Monotonic count of per-call f32 B repacks into the arena. Prepacked
// weights make this stand still; the steady-state tests assert it.
std::uint64_t gemm_b_pack_events();

// C[m x n] (row stride ldc) = act(A[m x k] (lda) * B[n x k]^T (ldb) + bias).
// bias has n entries and must be non-null.
//
// When `packed` is non-null its panels are used directly (no per-call
// repack). Otherwise, when `arena` is non-null and m is large enough to
// amortize it, B is repacked into NR-interleaved panels (scratch memory, no
// heap) so the inner loop vectorizes across the NR output columns — SIMD
// across outputs keeps each individual output's bias-first k-ascending
// accumulation order intact.
void gemm_f32_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, const float* bias, Activation act, float* c,
                 std::int64_t ldc, PoolRef pool, ScratchArena* arena,
                 const PackedBF32* packed = nullptr);

// Fused requantization parameters for the int8 path (per-output-channel
// multiplier/shift tables, gemmlowp-style).
struct GemmQuant {
  std::int32_t a_zero_point = 0;
  const std::int32_t* bias = nullptr;         // [n]
  const std::int32_t* multipliers = nullptr;  // [n]
  const int* shifts = nullptr;                // [n]
  std::int32_t out_zero_point = 0;
  std::int32_t act_min = -128;
  std::int32_t act_max = 127;
};

// C[m x n] int8 = requant(sum_k (A[i,k] - a_zp) * B[j,k] + bias[j]).
//
// With `packed` non-null the inner loop is the pair-broadcast vpmaddwd
// microkernel over the pair-interleaved panels above — SIMD across the 16
// output columns, one accumulator lane per column, no horizontal reduction
// (zero-point correction folded into the epilogue via col_sums); otherwise
// the scalar register-blocked path walks raw B rows. Integer accumulation
// is exact, so both paths produce bit-identical output.
void gemm_i8_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                std::int64_t ldb, const GemmQuant& q, std::int8_t* c,
                std::int64_t ldc, PoolRef pool,
                const PackedBI8* packed = nullptr);

}  // namespace mlexray
