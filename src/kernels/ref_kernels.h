// Reference kernels: straightforward nested-loop implementations, the
// "easy-to-understand but inefficient" baseline a debugging resolver invokes
// (mirrors TFLite's register_ref.h kernels discussed in the paper §4.4).
//
// The quantized AveragePool2D kernel optionally emulates the production bug
// the paper discovered in MobileNetV3's squeeze-excite pools (constant/
// invalid output); see KernelBugConfig in op_resolver.h.
#pragma once

#include "src/kernels/shared_kernels.h"

namespace mlexray {

void register_ref_float_kernels(KernelMap& map);
void register_ref_quant_kernels(KernelMap& map, bool emulate_avgpool_bug);

}  // namespace mlexray
