// Integer-only requantization arithmetic (gemmlowp-style).
//
// The optimized quantized kernels avoid floating point entirely: the real
// rescale factor in_scale*w_scale/out_scale is pre-quantized into a Q31
// multiplier plus a power-of-two shift, and applied with a
// rounding-doubling high multiply. This matches how production edge
// runtimes requantize and is the source of the small optimized-vs-reference
// discrepancies the paper's per-layer validation is designed to surface.
#pragma once

#include <cstdint>

namespace mlexray {

// Decomposes real_multiplier (must be in (0, 1)) into a Q31 fixed-point
// multiplier and a right shift: real ≈ multiplier * 2^-31 * 2^shift.
void quantize_multiplier(double real_multiplier, std::int32_t* multiplier,
                         int* shift);

// Saturating rounding doubling high multiply of two Q31 values.
std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a,
                                                   std::int32_t b);

// Rounding arithmetic right shift (round-to-nearest, ties away from zero
// matching gemmlowp's RoundingDivideByPOT).
std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent);

// Applies the quantized multiplier: result ≈ x * multiplier * 2^-31 * 2^shift.
std::int32_t multiply_by_quantized_multiplier(std::int32_t x,
                                              std::int32_t multiplier,
                                              int shift);

// Clamps an int32 to the int8 representable range.
inline std::int8_t clamp_to_i8(std::int32_t v) {
  if (v < -128) return -128;
  if (v > 127) return 127;
  return static_cast<std::int8_t>(v);
}

}  // namespace mlexray
