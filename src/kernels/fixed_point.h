// Integer-only requantization arithmetic (gemmlowp-style).
//
// The optimized quantized kernels avoid floating point entirely: the real
// rescale factor in_scale*w_scale/out_scale is pre-quantized into a Q31
// multiplier plus a power-of-two shift, and applied with a
// rounding-doubling high multiply. This matches how production edge
// runtimes requantize and is the source of the small optimized-vs-reference
// discrepancies the paper's per-layer validation is designed to surface.
#pragma once

#include <cstdint>

namespace mlexray {

// Decomposes real_multiplier (must be in (0, 1)) into a Q31 fixed-point
// multiplier and a right shift: real ≈ multiplier * 2^-31 * 2^shift.
void quantize_multiplier(double real_multiplier, std::int32_t* multiplier,
                         int* shift);

// General form: real_multiplier may be >= 1 (shift then comes out positive).
// Conv/FC/dwconv requant ratios are always < 1, but the elementwise family's
// output rescale (e.g. mul's sa*sb/so under adversarial scale choices) is
// not, so the Q31 prep there uses this variant.
void quantize_multiplier_any(double real_multiplier, std::int32_t* multiplier,
                             int* shift);

// Saturating rounding doubling high multiply of two Q31 values.
std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a,
                                                   std::int32_t b);

// Rounding arithmetic right shift (round-to-nearest, ties away from zero
// matching gemmlowp's RoundingDivideByPOT).
std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent);

// Applies the quantized multiplier: result ≈ x * multiplier * 2^-31 * 2^shift.
std::int32_t multiply_by_quantized_multiplier(std::int32_t x,
                                              std::int32_t multiplier,
                                              int shift);

// Saturating left shift to int32 (identity for left <= 0). The positive-shift
// requant path pre-shifts its argument with this before the high multiply, so
// overflowing inputs pin to the int32 rails instead of wrapping (they clamp to
// the int8 activation range afterwards either way).
std::int32_t saturating_left_shift(std::int32_t x, int left);

// multiply_by_quantized_multiplier for decompositions from
// quantize_multiplier_any: positive shifts pre-scale x (TFLite ordering),
// non-positive shifts behave exactly like the plain form.
std::int32_t multiply_by_quantized_multiplier_any(std::int32_t x,
                                                  std::int32_t multiplier,
                                                  int shift);

// Clamps an int32 to the int8 representable range.
inline std::int8_t clamp_to_i8(std::int32_t v) {
  if (v < -128) return -128;
  if (v > 127) return 127;
  return static_cast<std::int8_t>(v);
}

#if defined(__GNUC__) || defined(__clang__)

// Eight-lane vector form of multiply_by_quantized_multiplier, bit-identical
// per lane to the scalar function (the kernel parity tests compare the
// vector and scalar requant paths byte for byte). GNU vector extensions so
// every ISA tier shares one definition; on AVX2+ the whole thing stays in
// ymm registers, elsewhere the compiler scalarizes it correctly.
//
// `shift_exp` lanes hold the *negated* shift (>= 0), i.e. the
// rounding_divide_by_pot exponent.
using v8s32_fx = std::int32_t __attribute__((vector_size(32), aligned(4)));

inline v8s32_fx multiply_by_quantized_multiplier_v8(v8s32_fx x,
                                                    v8s32_fx multiplier,
                                                    v8s32_fx shift_exp) {
  using v4s32 = std::int32_t __attribute__((vector_size(16)));
  using v4s64 = std::int64_t __attribute__((vector_size(32)));
  // Saturating rounding doubling high multiply. The scalar form's INT_MIN *
  // INT_MIN saturation cannot trigger here: quantize_multiplier produces
  // multipliers in [2^30, 2^31), always positive.
  auto srdhm_half = [](v4s32 a, v4s32 b) -> v4s32 {
    const v4s64 ab = __builtin_convertvector(a, v4s64) *
                     __builtin_convertvector(b, v4s64);
    const v4s64 nudge =
        ab >= 0 ? (v4s64){} + (1LL << 30) : (v4s64){} + (1 - (1LL << 30));
    v4s64 t = ab + nudge;
    // Truncating (toward zero) division by 2^31, as the scalar `/` does:
    // bias negative values up by 2^31 - 1 before the arithmetic shift.
    t += (t < 0) & ((v4s64){} + ((1LL << 31) - 1));
    return __builtin_convertvector(t >> 31, v4s32);
  };
  const v4s32 xlo = __builtin_shufflevector(x, x, 0, 1, 2, 3);
  const v4s32 xhi = __builtin_shufflevector(x, x, 4, 5, 6, 7);
  const v4s32 mlo =
      __builtin_shufflevector(multiplier, multiplier, 0, 1, 2, 3);
  const v4s32 mhi =
      __builtin_shufflevector(multiplier, multiplier, 4, 5, 6, 7);
  const v4s32 hlo = srdhm_half(xlo, mlo);
  const v4s32 hhi = srdhm_half(xhi, mhi);
  const v8s32_fx high = __builtin_shufflevector(hlo, hhi, 0, 1, 2, 3, 4, 5,
                                                6, 7);
  // rounding_divide_by_pot with a per-lane exponent (exponent 0 lanes fall
  // through all three terms as identities, matching the scalar early out).
  const v8s32_fx mask = (((v8s32_fx){} + 1) << shift_exp) - 1;
  const v8s32_fx remainder = high & mask;
  v8s32_fx result = high >> shift_exp;
  const v8s32_fx threshold = (mask >> 1) + ((high < 0) & 1);
  result += (remainder > threshold) & 1;
  return result;
}

// The shared int8 kernel epilogue for 8 consecutive output channels:
// requantize, add the output zero point, clamp to the fused activation
// range, narrow to int8, store. Both the packed GEMM and the dwconv
// epilogues call this, so the bit-exactness contract their conformance
// grids assert lives in exactly one place.
inline void requant_clamp_store_i8_v8(v8s32_fx acc, v8s32_fx multiplier,
                                      v8s32_fx shift_exp, std::int32_t out_zp,
                                      std::int32_t act_min,
                                      std::int32_t act_max,
                                      std::int8_t* dst) {
  using v8s8_fx = std::int8_t __attribute__((vector_size(8), aligned(1)));
  v8s32_fx v = multiply_by_quantized_multiplier_v8(acc, multiplier,
                                                   shift_exp) +
               ((v8s32_fx){} + out_zp);
  const v8s32_fx vmax = (v8s32_fx){} + act_max;
  const v8s32_fx vmin = (v8s32_fx){} + act_min;
  v = v > vmax ? vmax : v;
  v = v < vmin ? vmin : v;
  const v8s8_fx out8 = __builtin_convertvector(v, v8s8_fx);
  __builtin_memcpy(dst, &out8, sizeof(out8));
}

#endif  // __GNUC__ || __clang__

}  // namespace mlexray
