#include "src/kernels/fixed_point.h"

#include <cmath>
#include <limits>

#include "src/common/error.h"

namespace mlexray {

void quantize_multiplier(double real_multiplier, std::int32_t* multiplier,
                         int* shift) {
  MLX_CHECK_GT(real_multiplier, 0.0);
  MLX_CHECK_LT(real_multiplier, 1.0)
      << "requant multiplier must be < 1 (normalize upstream)";
  int exponent = 0;
  double significand = std::frexp(real_multiplier, &exponent);
  // significand in [0.5, 1); scale to Q31.
  auto q = static_cast<std::int64_t>(std::round(significand * (1LL << 31)));
  MLX_CHECK_LE(q, 1LL << 31);
  if (q == (1LL << 31)) {
    q /= 2;
    ++exponent;
  }
  MLX_CHECK_LE(exponent, 0) << "multiplier >= 1 after rounding";
  *multiplier = static_cast<std::int32_t>(q);
  *shift = exponent;
}

void quantize_multiplier_any(double real_multiplier, std::int32_t* multiplier,
                             int* shift) {
  MLX_CHECK_GT(real_multiplier, 0.0);
  int exponent = 0;
  double significand = std::frexp(real_multiplier, &exponent);
  auto q = static_cast<std::int64_t>(std::round(significand * (1LL << 31)));
  MLX_CHECK_LE(q, 1LL << 31);
  if (q == (1LL << 31)) {
    q /= 2;
    ++exponent;
  }
  MLX_CHECK_LE(exponent, 30) << "requant multiplier out of range";
  *multiplier = static_cast<std::int32_t>(q);
  *shift = exponent;
}

std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a,
                                                   std::int32_t b) {
  bool overflow = (a == b) && (a == std::numeric_limits<std::int32_t>::min());
  if (overflow) return std::numeric_limits<std::int32_t>::max();
  std::int64_t ab = static_cast<std::int64_t>(a) * b;
  std::int32_t nudge = ab >= 0 ? (1 << 30) : (1 - (1 << 30));
  return static_cast<std::int32_t>((ab + nudge) / (1LL << 31));
}

std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent) {
  MLX_CHECK(exponent >= 0 && exponent <= 31);
  if (exponent == 0) return x;
  const std::int32_t mask = (1 << exponent) - 1;
  const std::int32_t remainder = x & mask;
  std::int32_t result = x >> exponent;
  std::int32_t threshold = (mask >> 1) + ((x < 0) ? 1 : 0);
  if (remainder > threshold) ++result;
  return result;
}

std::int32_t multiply_by_quantized_multiplier(std::int32_t x,
                                              std::int32_t multiplier,
                                              int shift) {
  // shift <= 0 for multipliers < 1 (our only use case).
  std::int32_t high = saturating_rounding_doubling_high_mul(x, multiplier);
  return rounding_divide_by_pot(high, -shift);
}

std::int32_t saturating_left_shift(std::int32_t x, int left) {
  if (left <= 0) return x;
  MLX_CHECK_LE(left, 31);
  const std::int64_t wide = static_cast<std::int64_t>(x) << left;
  if (wide > std::numeric_limits<std::int32_t>::max()) {
    return std::numeric_limits<std::int32_t>::max();
  }
  if (wide < std::numeric_limits<std::int32_t>::min()) {
    return std::numeric_limits<std::int32_t>::min();
  }
  return static_cast<std::int32_t>(wide);
}

std::int32_t multiply_by_quantized_multiplier_any(std::int32_t x,
                                                  std::int32_t multiplier,
                                                  int shift) {
  const std::int32_t high = saturating_rounding_doubling_high_mul(
      saturating_left_shift(x, shift), multiplier);
  return rounding_divide_by_pot(high, shift > 0 ? 0 : -shift);
}

}  // namespace mlexray
