// Vectorized per-channel DepthwiseConv2D kernel family with plan-time
// weight packing.
//
// Depthwise conv has no GEMM to lean on: each output channel is a small
// kh x kw stencil over a single input channel, so the profitable SIMD axis
// is the channel dimension itself — the [1, kh, kw, ch] filter layout is
// already channel-contiguous per tap, and NHWC activations are channel-
// contiguous per pixel, so a vector register holds C adjacent channels and
// the kernel walks the window accumulating C stencils at once.
//
// Plan-time packing (see the prepare hooks in opt_kernels.cc) builds, once,
// everything the steady-state inner loop would otherwise recompute:
//
//  - f32: nothing to build — the [1, kh, kw, ch] filter already *is* the
//    tap-major panel layout the vector loop streams, so the packed view
//    points straight at the node's weights (no copy, on the plan and
//    no-plan paths alike).
//  - int8: the filter widened to int16 (the widening multiply's weight
//    operand then loads directly, no per-iteration sign extension), plus a
//    per-channel fused accumulator bias
//        acc_init[c] = bias[c] - in_zp * sum_taps w[tap][c]
//    folding the activation zero point out of the inner loop entirely
//    (out-of-bounds taps are fed x = in_zp, so the raw dot product over all
//    taps minus in_zp * w_sum equals the reference kernel's skipped-tap
//    accumulation exactly), plus the per-channel Q31 requant tables and the
//    fused activation clamp range.
//
// `dwconv_pack_events()` counts every pack/table build (prepare-time and
// per-call fallback alike), mirroring `gemm_b_pack_events()`: the
// conformance tests snapshot it after plan construction and assert
// steady-state invoke never packs again.
//
// Integer accumulation is exact and order-free, so every tier (AVX2,
// generic GNU-vector, scalar) produces bit-identical int8 output; the f32
// tiers keep the reference kernels' per-channel accumulation order
// (bias-first, taps in (fy, fx) order) so float output is bit-identical
// too. `set_dwconv_tier_for_testing()` forces a lower tier so the
// conformance grid can assert that equivalence instead of assuming it.
#pragma once

#include <cstdint>

#include "src/common/thread_pool.h"
#include "src/graph/op_types.h"

namespace mlexray {

// Channels per vector block of the int8 / f32 inner loops. Exposed so the
// prepare hooks can size panels and the tests can target the vector tails.
inline constexpr std::int64_t kDwLanesI8 = 16;
inline constexpr std::int64_t kDwLanesF32 = 8;

// Geometry of one depthwise invocation. out_ch == in_ch * depth_mult;
// output channel oc convolves input channel oc / depth_mult with filter
// column oc (TFLite depth-multiplier semantics).
struct DwConvShape {
  std::int64_t batch = 0;
  std::int64_t in_h = 0, in_w = 0, in_ch = 0;
  std::int64_t out_h = 0, out_w = 0, out_ch = 0;
  int kh = 0, kw = 0;
  int stride_h = 1, stride_w = 1;
  std::int64_t pad_h = 0, pad_w = 0;  // top / left padding
  std::int64_t depth_mult = 1;
};

// Packed views (plain pointers into PreparedStorage, scratch, or — for f32,
// whose source layout is already panel-shaped — the node's own weights).
struct PackedDwF32 {
  const float* weights = nullptr;  // [kh*kw][out_ch] tap-major
  const float* bias = nullptr;     // [out_ch]
};

struct PackedDwI8 {
  const std::int16_t* weights = nullptr;   // [kh*kw][out_ch], pre-widened
  const std::int32_t* acc_init = nullptr;  // [out_ch] bias - in_zp * w_sum
  const std::int32_t* multipliers = nullptr;  // [out_ch] Q31
  const int* shifts = nullptr;                // [out_ch]
  std::int32_t in_zp = 0;
  std::int32_t out_zp = 0;
  std::int32_t act_min = -128;
  std::int32_t act_max = 127;
};

// Packs the [1, kh, kw, ch] int8 filter: widens to int16 (same tap-major
// order) and returns per-channel tap sums (for acc_init). Bumps
// dwconv_pack_events().
void pack_dw_weights_i8(std::int64_t taps, std::int64_t ch,
                        const std::int8_t* w, std::int16_t* out,
                        std::int32_t* w_sums);

// Monotonic count of dwconv weight packs / table builds (prepare-time and
// per-call fallback). Plan-prepared kernels make this stand still across
// invokes; the conformance grid asserts it.
std::uint64_t dwconv_pack_events();

// Test hook: force the compute tier for subsequent invocations so the
// conformance grid can assert cross-tier bit-exactness. kAuto restores the
// best compiled-in tier. Tiers below the best available degrade gracefully
// (kAvx2 without AVX2 runs the generic tier, etc.).
enum class DwConvTier { kAuto = 0, kGenericVector = 1, kScalar = 2 };
void set_dwconv_tier_for_testing(DwConvTier tier);
// Name of the tier that kAuto resolves to on this build ("avx2",
// "generic-vector", or "scalar"); surfaced by benches.
const char* dwconv_best_tier_name();

// y[n, oy, ox, c] = act(bias[c] + sum_taps x[tap, c / dm] * w[tap, c]),
// accumulation per channel in reference order. Rows are partitioned across
// the pool when it pays.
void dwconv2d_f32(const DwConvShape& s, const float* x, const PackedDwF32& p,
                  Activation act, float* y, PoolRef pool);

// Integer path: raw widening dot product over all taps (out-of-bounds taps
// read x = in_zp), then requant(acc + acc_init[c]) per channel. Bit-exact
// across tiers.
void dwconv2d_i8(const DwConvShape& s, const std::int8_t* x,
                 const PackedDwI8& p, std::int8_t* y, PoolRef pool);

}  // namespace mlexray
