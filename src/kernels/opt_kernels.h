// Optimized kernels: im2col + contiguous dot products, integer-only
// fixed-point requantization, optional multithreading — the "production"
// resolver (mirrors TFLite's register.h kernels in the paper §4.4).
//
// The quantized DepthwiseConv2D kernel optionally emulates the production
// bug the paper discovered (int16 accumulator overflow wrapping); see
// KernelBugConfig in op_resolver.h.
#pragma once

#include "src/kernels/shared_kernels.h"

namespace mlexray {

void register_opt_float_kernels(KernelMap& map);
void register_opt_quant_kernels(KernelMap& map, bool emulate_dwconv_bug);

}  // namespace mlexray
