// Op resolvers: bind graph ops to kernel implementations.
//
// Mirrors the TFLite pair the paper leverages for debugging (§4.4):
//   BuiltinOpResolver — "optimized kernel" production path (register.h)
//   RefOpResolver     — "reference kernel" debugging path (register_ref.h)
// Advanced users can subclass OpResolver and override individual kernels
// (the paper's "custom op resolver" option).
//
// KernelBugConfig opts into faithful emulations of the two production kernel
// defects the paper discovered. Defaults are correct kernels; the Fig-5/6
// benchmark harnesses construct "as-shipped" resolvers explicitly.
#pragma once

#include <memory>
#include <string>

#include "src/kernels/shared_kernels.h"

namespace mlexray {

struct KernelBugConfig {
  // Optimized quantized DepthwiseConv2D accumulates in int16 and wraps.
  bool optimized_dwconv_int16_overflow = false;
  // Reference quantized AveragePool2D uses a wrong shift and drops the
  // zero point (constant/invalid output).
  bool reference_avgpool_bad_shift = false;

  static KernelBugConfig none() { return {}; }
  // The state of the production stack at the time of the paper's study.
  static KernelBugConfig as_shipped() {
    return {.optimized_dwconv_int16_overflow = true,
            .reference_avgpool_bad_shift = true};
  }
};

class OpResolver {
 public:
  virtual ~OpResolver() = default;
  virtual std::string name() const = 0;

  // Resolves the kernel entry (invoke + optional prepare hook) for a node;
  // throws MlxError if unsupported.
  const KernelEntry& find(const Node& node) const;

  // True if the node executes in the integer path.
  static bool is_quantized_node(const Node& node);

 protected:
  KernelMap map_;
};

// Production resolver: optimized kernels (+ shared structural ops). Falls
// back to reference implementations for ops without an optimized variant.
class BuiltinOpResolver : public OpResolver {
 public:
  explicit BuiltinOpResolver(KernelBugConfig bugs = KernelBugConfig::none());
  std::string name() const override { return "OpResolver(optimized)"; }
};

// Debugging resolver: reference kernels only.
class RefOpResolver : public OpResolver {
 public:
  explicit RefOpResolver(KernelBugConfig bugs = KernelBugConfig::none());
  std::string name() const override { return "RefOpResolver(reference)"; }
};

}  // namespace mlexray
