#include "src/train/losses.h"

#include <cmath>

namespace mlexray {

LossGrad softmax_cross_entropy(const Tensor& logits, int label) {
  std::vector<int> labels(1, label);
  // Treat the whole tensor as one row of C classes.
  const std::int64_t classes = logits.num_elements();
  Tensor row = Tensor::f32(Shape{1, classes});
  std::memcpy(row.raw_data(), logits.raw_data(), logits.byte_size());
  LossGrad lg = softmax_cross_entropy_rows(row, labels);
  Tensor grad(DType::kF32, logits.shape());
  std::memcpy(grad.raw_data(), lg.grad.raw_data(), grad.byte_size());
  lg.grad = std::move(grad);
  return lg;
}

LossGrad softmax_cross_entropy_rows(const Tensor& logits,
                                    const std::vector<int>& labels,
                                    double weight) {
  const Shape& s = logits.shape();
  const std::int64_t classes = s.dim(s.rank() - 1);
  const std::int64_t rows = logits.num_elements() / classes;
  MLX_CHECK_EQ(static_cast<std::size_t>(rows), labels.size());
  const float* x = logits.data<float>();
  LossGrad out;
  out.grad = Tensor(DType::kF32, s);
  float* g = out.grad.data<float>();
  std::vector<double> p(static_cast<std::size_t>(classes));
  int active_rows = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    if (labels[static_cast<std::size_t>(r)] >= 0) ++active_rows;
  }
  if (active_rows == 0) return out;
  const double row_w = weight / active_rows;
  for (std::int64_t r = 0; r < rows; ++r) {
    int label = labels[static_cast<std::size_t>(r)];
    if (label < 0) continue;
    MLX_CHECK_LT(label, classes);
    const float* xr = x + r * classes;
    double max_v = xr[0];
    for (std::int64_t c = 1; c < classes; ++c) max_v = std::max<double>(max_v, xr[c]);
    double sum = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      p[static_cast<std::size_t>(c)] = std::exp(xr[c] - max_v);
      sum += p[static_cast<std::size_t>(c)];
    }
    for (std::int64_t c = 0; c < classes; ++c) p[static_cast<std::size_t>(c)] /= sum;
    out.loss += -std::log(std::max(p[static_cast<std::size_t>(label)], 1e-12)) * row_w;
    float* gr = g + r * classes;
    for (std::int64_t c = 0; c < classes; ++c) {
      double grad = p[static_cast<std::size_t>(c)] - (c == label ? 1.0 : 0.0);
      gr[c] = static_cast<float>(grad * row_w);
    }
  }
  return out;
}

LossGrad mse_loss(const Tensor& pred, const Tensor& target) {
  MLX_CHECK_EQ(pred.num_elements(), target.num_elements());
  const float* p = pred.data<float>();
  const float* t = target.data<float>();
  LossGrad out;
  out.grad = Tensor(DType::kF32, pred.shape());
  float* g = out.grad.data<float>();
  const std::int64_t n = pred.num_elements();
  for (std::int64_t i = 0; i < n; ++i) {
    double d = static_cast<double>(p[i]) - t[i];
    out.loss += d * d / static_cast<double>(n);
    g[i] = static_cast<float>(2.0 * d / static_cast<double>(n));
  }
  return out;
}

LossGrad smooth_l1_rows(const Tensor& pred, const Tensor& target,
                        const std::vector<bool>& mask, double weight) {
  const Shape& s = pred.shape();
  const std::int64_t cols = s.dim(s.rank() - 1);
  const std::int64_t rows = pred.num_elements() / cols;
  MLX_CHECK_EQ(static_cast<std::size_t>(rows), mask.size());
  const float* p = pred.data<float>();
  const float* t = target.data<float>();
  LossGrad out;
  out.grad = Tensor(DType::kF32, s);
  float* g = out.grad.data<float>();
  int active = 0;
  for (bool m : mask) {
    if (m) ++active;
  }
  if (active == 0) return out;
  const double row_w = weight / active;
  for (std::int64_t r = 0; r < rows; ++r) {
    if (!mask[static_cast<std::size_t>(r)]) continue;
    for (std::int64_t c = 0; c < cols; ++c) {
      double d = static_cast<double>(p[r * cols + c]) - t[r * cols + c];
      if (std::abs(d) < 1.0) {
        out.loss += 0.5 * d * d * row_w;
        g[r * cols + c] = static_cast<float>(d * row_w);
      } else {
        out.loss += (std::abs(d) - 0.5) * row_w;
        g[r * cols + c] = static_cast<float>((d > 0 ? 1.0 : -1.0) * row_w);
      }
    }
  }
  return out;
}

}  // namespace mlexray
