#include "src/train/train_loop.h"

#include <cstdio>
#include <numeric>

#include "src/common/rng.h"

namespace mlexray {

namespace {

// Stacks single-sample tensors ([1, ...]) into one [batch, ...] tensor.
Tensor stack_batch(const std::vector<const Tensor*>& samples) {
  MLX_CHECK(!samples.empty());
  const Tensor& first = *samples[0];
  Shape shape = first.shape();
  MLX_CHECK_EQ(shape.dim(0), 1) << "samples must be batch-1 tensors";
  shape.set_dim(0, static_cast<std::int64_t>(samples.size()));
  Tensor out(first.dtype(), shape);
  auto* dst = static_cast<std::uint8_t*>(out.raw_data());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    MLX_CHECK(samples[i]->shape() == first.shape());
    std::memcpy(dst + i * first.byte_size(), samples[i]->raw_data(),
                first.byte_size());
  }
  return out;
}

}  // namespace

double fit_classifier(Graph* model, int logits_node,
                      const std::vector<LabeledExample>& train_set,
                      const FitConfig& config) {
  MLX_CHECK(!train_set.empty());
  const std::int64_t model_batch =
      model->node(model->input_ids()[0]).output_shape.dim(0);
  Trainer trainer(model, config.train);
  Pcg32 rng(config.shuffle_seed);
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    epoch_loss = 0.0;
    if (model_batch > 1) {
      // Mini-batch training: pack batch-size samples into one tensor so
      // BatchNorm sees real batch statistics. The tail wraps around.
      const auto batch = static_cast<std::size_t>(model_batch);
      std::size_t batches = (order.size() + batch - 1) / batch;
      for (std::size_t bi = 0; bi < batches; ++bi) {
        std::vector<const Tensor*> samples;
        std::vector<int> labels;
        for (std::size_t k = 0; k < batch; ++k) {
          std::size_t idx = order[(bi * batch + k) % order.size()];
          samples.push_back(&train_set[idx].input);
          labels.push_back(train_set[idx].label);
        }
        Tensor packed = stack_batch(samples);
        trainer.zero_grad();
        trainer.forward({packed});
        LossGrad lg = softmax_cross_entropy_rows(
            trainer.activation(logits_node), labels);
        epoch_loss += lg.loss;
        std::vector<std::pair<int, Tensor>> seeds;
        seeds.emplace_back(logits_node, std::move(lg.grad));
        trainer.backward(seeds);
        trainer.step();
      }
      epoch_loss /= static_cast<double>(batches);
    } else {
      // Per-sample training with gradient accumulation.
      trainer.zero_grad();
      int in_batch = 0;
      for (std::size_t idx : order) {
        const LabeledExample& ex = train_set[idx];
        epoch_loss += trainer.train_sample({ex.input}, logits_node, ex.label);
        if (++in_batch == config.batch_size) {
          trainer.step();
          in_batch = 0;
        }
      }
      if (in_batch > 0) trainer.step();
      epoch_loss /= static_cast<double>(train_set.size());
    }
    if (config.verbose) {
      std::printf("  [train] %s epoch %d/%d loss %.4f\n", model->name.c_str(),
                  epoch + 1, config.epochs, epoch_loss);
      std::fflush(stdout);
    }
  }
  return epoch_loss;
}

int argmax(const Tensor& tensor) {
  Tensor f = tensor.to_f32();
  const float* p = f.data<float>();
  int best = 0;
  for (std::int64_t i = 1; i < f.num_elements(); ++i) {
    if (p[i] > p[best]) best = static_cast<int>(i);
  }
  return best;
}

double evaluate_classifier(const Graph& model, const OpResolver& resolver,
                           const std::vector<LabeledExample>& examples,
                           int num_threads) {
  MLX_CHECK(!examples.empty());
  Interpreter interp(&model, &resolver, num_threads);
  int correct = 0;
  for (const LabeledExample& ex : examples) {
    interp.set_input(0, ex.input);
    interp.invoke();
    if (argmax(interp.output(0)) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace mlexray
