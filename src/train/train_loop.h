// High-level training/evaluation loops for classification-style tasks.
#pragma once

#include <vector>

#include "src/train/trainer.h"

namespace mlexray {

struct LabeledExample {
  Tensor input;
  int label = 0;
};

struct FitConfig {
  int epochs = 5;
  int batch_size = 16;  // gradient-accumulation granularity
  TrainConfig train;
  std::uint64_t shuffle_seed = 42;
  bool verbose = false;
};

// Trains `model` in place with softmax-xent on `logits_node`.
// Returns the final-epoch average training loss.
double fit_classifier(Graph* model, int logits_node,
                      const std::vector<LabeledExample>& train_set,
                      const FitConfig& config);

// Top-1 accuracy of a model on examples (argmax of output 0, which may be
// float logits/probabilities or a quantized tensor — dequantized first).
double evaluate_classifier(const Graph& model, const OpResolver& resolver,
                           const std::vector<LabeledExample>& examples,
                           int num_threads = 1);

// Argmax over the innermost axis of a (dequantized) tensor.
int argmax(const Tensor& tensor);

}  // namespace mlexray
