// Loss functions for the training pipeline.
//
// Each returns the scalar loss and the gradient w.r.t. its input tensor; the
// Trainer seeds backprop with these gradients. Classification trains against
// pre-softmax logits (numerically stable combined softmax-xent).
#pragma once

#include "src/tensor/tensor.h"

namespace mlexray {

struct LossGrad {
  double loss = 0.0;
  Tensor grad;  // dL/d(input), same shape as the input
};

// Softmax cross-entropy on logits (any shape with classes innermost; label
// indexes the innermost axis of the given row). For [1, C] logits, row = 0.
LossGrad softmax_cross_entropy(const Tensor& logits, int label);

// Row-wise softmax cross-entropy with per-row labels (label < 0 => row
// ignored); used by detection (anchor rows) and segmentation (pixel rows).
// `weight` scales every row's contribution.
LossGrad softmax_cross_entropy_rows(const Tensor& logits,
                                    const std::vector<int>& labels,
                                    double weight = 1.0);

// Mean squared error against a target tensor.
LossGrad mse_loss(const Tensor& pred, const Tensor& target);

// Smooth-L1 (Huber, delta=1) over selected rows of a [rows, 4] tensor;
// rows with mask=false contribute nothing (detection box regression).
LossGrad smooth_l1_rows(const Tensor& pred, const Tensor& target,
                        const std::vector<bool>& mask, double weight = 1.0);

}  // namespace mlexray
