// Reverse-mode training on the graph IR.
//
// The "training pipeline" substrate the paper's reference baselines come
// from. Forward reuses the optimized float kernels (BatchNorm runs in
// training mode with batch statistics inside the trainer); backward
// implements per-op gradients; Adam updates weights in place.
//
// Training graphs use standalone activation nodes (no fused activations) —
// fusion happens later in the converter, mirroring the paper's deployment
// flow (checkpoint -> converted -> quantized).
#pragma once

#include <memory>
#include <vector>

#include "src/graph/graph.h"
#include "src/interpreter/interpreter.h"
#include "src/train/losses.h"

namespace mlexray {

struct TrainConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float adam_eps = 1e-8f;
  float weight_decay = 0.0f;
  float bn_momentum = 0.9f;  // moving-average retention for BN stats
  int num_threads = 1;
};

class Trainer {
 public:
  // model must outlive the trainer; weights are updated in place.
  Trainer(Graph* model, TrainConfig config);

  // Clears accumulated gradients (call at the start of each mini-batch).
  void zero_grad();

  // Forward pass on one sample (inputs in model-input order).
  void forward(const std::vector<Tensor>& inputs);

  // Seeds dL/d(activation) at the given nodes and backpropagates,
  // accumulating weight gradients. Call after forward().
  void backward(const std::vector<std::pair<int, Tensor>>& output_grads);

  // Convenience: forward + softmax-xent on `logits_node` + backward.
  // Returns the sample loss.
  double train_sample(const std::vector<Tensor>& inputs, int logits_node,
                      int label);

  // Adam step with gradients averaged over the accumulated samples.
  void step();

  const Tensor& activation(int node_id) const;

  // Accumulated gradient of a node's weight (diagnostics / gradient checks).
  const Tensor& weight_grad(int node_id, std::size_t weight_index) const;

  Graph& model() { return *model_; }
  long steps_taken() const { return step_count_; }

 private:
  void forward_batch_norm(const Node& node);
  void backward_node(const Node& node);

  Graph* model_;
  TrainConfig cfg_;
  BuiltinOpResolver resolver_;
  // Trainer-owned worker set honoring cfg_.num_threads as a hard cap (null
  // view when num_threads <= 1); independent of any serving pool.
  std::unique_ptr<ThreadPool> owned_pool_;
  PoolRef pool_;
  ScratchArena arena_;  // scratch for the optimized forward kernels

  std::vector<Tensor> acts_;                 // forward activations per node
  std::vector<Tensor> grads_;                // dL/d(activation) per node
  std::vector<std::vector<Tensor>> wgrads_;  // accumulated weight grads
  std::vector<std::vector<Tensor>> adam_m_;
  std::vector<std::vector<Tensor>> adam_v_;

  struct BnCache {
    std::vector<float> mean;
    std::vector<float> inv_std;
  };
  std::vector<BnCache> bn_cache_;

  int accum_count_ = 0;
  long step_count_ = 0;
};

// Copies weights (and BN stats) from one model to a structurally identical
// one (used to move trained weights between graph variants).
void copy_weights(const Graph& src, Graph* dst);

}  // namespace mlexray
