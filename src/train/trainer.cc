#include "src/train/trainer.h"

#include <cmath>
#include <cstring>

#include "src/kernels/conv_utils.h"

namespace mlexray {

Trainer::Trainer(Graph* model, TrainConfig config)
    : model_(model), cfg_(config) {
  MLX_CHECK(model != nullptr);
  model_->validate();
  if (cfg_.num_threads > 1) {
    // num_threads is a cap that holds exactly: the training thread plus at
    // most num_threads - 1 owned workers (clamped to the host's spare
    // cores), never the whole machine.
    owned_pool_ = std::make_unique<ThreadPool>(
        ThreadPool::workers_for(cfg_.num_threads));
    pool_ = PoolRef(owned_pool_.get(),
                    static_cast<std::size_t>(cfg_.num_threads));
  }
  acts_.reserve(model_->nodes.size());
  for (const Node& n : model_->nodes) {
    MLX_CHECK(n.output_dtype == DType::kF32 || n.type == OpType::kInput)
        << "training requires float graphs (node '" << n.name << "')";
    if (n.type == OpType::kConv2D || n.type == OpType::kDepthwiseConv2D ||
        n.type == OpType::kFullyConnected || n.type == OpType::kAdd) {
      MLX_CHECK(n.attrs.activation == Activation::kNone)
          << "training graphs must use standalone activations ('" << n.name
          << "')";
    }
    acts_.emplace_back(n.output_dtype, n.output_shape);
    grads_.emplace_back(DType::kF32, n.output_shape);
  }
  wgrads_.resize(model_->nodes.size());
  adam_m_.resize(model_->nodes.size());
  adam_v_.resize(model_->nodes.size());
  bn_cache_.resize(model_->nodes.size());
  for (const Node& n : model_->nodes) {
    auto idx = static_cast<std::size_t>(n.id);
    for (const Tensor& w : n.weights) {
      wgrads_[idx].emplace_back(DType::kF32, w.shape());
      adam_m_[idx].emplace_back(DType::kF32, w.shape());
      adam_v_[idx].emplace_back(DType::kF32, w.shape());
    }
  }
}

void Trainer::zero_grad() {
  for (auto& per_node : wgrads_) {
    for (Tensor& g : per_node) g.fill_zero();
  }
  accum_count_ = 0;
}

void Trainer::forward_batch_norm(const Node& node) {
  // Training-mode BN: batch statistics over (N,H,W) per channel; updates
  // moving stats. With per-sample training, spatial positions provide the
  // statistics.
  const Tensor& in = acts_[static_cast<std::size_t>(node.inputs[0])];
  Tensor& out = acts_[static_cast<std::size_t>(node.id)];
  Node& n = model_->node(node.id);
  const Shape& is = in.shape();
  const std::int64_t ch = is.dim(is.rank() - 1);
  const std::int64_t rows = is.num_elements() / ch;
  const float* x = in.data<float>();
  float* y = out.data<float>();
  const float* gamma = n.weights[0].data<float>();
  const float* beta = n.weights[1].data<float>();
  float* moving_mean = n.weights[2].data<float>();
  float* moving_var = n.weights[3].data<float>();

  BnCache& cache = bn_cache_[static_cast<std::size_t>(node.id)];
  cache.mean.assign(static_cast<std::size_t>(ch), 0.0f);
  cache.inv_std.assign(static_cast<std::size_t>(ch), 0.0f);

  for (std::int64_t c = 0; c < ch; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::int64_t r = 0; r < rows; ++r) {
      double v = x[r * ch + c];
      sum += v;
      sum_sq += v * v;
    }
    double mean = sum / static_cast<double>(rows);
    double var = std::max(0.0, sum_sq / static_cast<double>(rows) - mean * mean);
    double inv_std = 1.0 / std::sqrt(var + n.attrs.epsilon);
    cache.mean[static_cast<std::size_t>(c)] = static_cast<float>(mean);
    cache.inv_std[static_cast<std::size_t>(c)] = static_cast<float>(inv_std);
    for (std::int64_t r = 0; r < rows; ++r) {
      y[r * ch + c] = static_cast<float>(
          gamma[c] * (x[r * ch + c] - mean) * inv_std + beta[c]);
    }
    moving_mean[c] = cfg_.bn_momentum * moving_mean[c] +
                     (1.0f - cfg_.bn_momentum) * static_cast<float>(mean);
    moving_var[c] = cfg_.bn_momentum * moving_var[c] +
                    (1.0f - cfg_.bn_momentum) * static_cast<float>(var);
  }
}

void Trainer::forward(const std::vector<Tensor>& inputs) {
  std::vector<int> input_ids = model_->input_ids();
  MLX_CHECK_EQ(inputs.size(), input_ids.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Tensor& slot = acts_[static_cast<std::size_t>(input_ids[i])];
    MLX_CHECK(inputs[i].shape() == slot.shape());
    MLX_CHECK(inputs[i].dtype() == slot.dtype());
    std::memcpy(slot.raw_data(), inputs[i].raw_data(), inputs[i].byte_size());
  }
  for (const Node& n : model_->nodes) {
    if (n.type == OpType::kInput) continue;
    if (n.type == OpType::kBatchNorm) {
      forward_batch_norm(n);
      continue;
    }
    KernelContext ctx;
    ctx.node = &n;
    ctx.output = &acts_[static_cast<std::size_t>(n.id)];
    ctx.pool = pool_;
    arena_.reset();
    ctx.arena = &arena_;
    for (int in : n.inputs) ctx.inputs.push_back(&acts_[static_cast<std::size_t>(in)]);
    // No plan here, so ctx.prepared stays null: kernels take their per-call
    // fallback paths (arena repacking, scratch requant tables).
    resolver_.find(n).invoke(ctx);
  }
}

namespace {

struct ConvGeom {
  int kh, kw;
  std::int64_t pad_h, pad_w;
};

ConvGeom conv_geom(const Node& node, const Shape& is, const Shape& os,
                   const Shape& fs) {
  ConvGeom g;
  g.kh = static_cast<int>(fs.dim(1));
  g.kw = static_cast<int>(fs.dim(2));
  g.pad_h = node.attrs.padding == Padding::kSame
                ? same_pad_before(is.dim(1), g.kh, node.attrs.stride_h, os.dim(1))
                : 0;
  g.pad_w = node.attrs.padding == Padding::kSame
                ? same_pad_before(is.dim(2), g.kw, node.attrs.stride_w, os.dim(2))
                : 0;
  return g;
}

}  // namespace

void Trainer::backward_node(const Node& node) {
  const auto id = static_cast<std::size_t>(node.id);
  const Tensor& gy = grads_[id];
  switch (node.type) {
    case OpType::kInput:
      return;
    case OpType::kConv2D: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const Tensor& x = acts_[in_id];
      Tensor& gx = grads_[in_id];
      const Tensor& w = node.weights[0];
      Tensor& gw = wgrads_[id][0];
      Tensor& gb = wgrads_[id][1];
      const Shape& is = x.shape();
      const Shape& os = node.output_shape;
      const Shape& fs = w.shape();
      ConvGeom g = conv_geom(node, is, os, fs);
      const std::int64_t in_ch = is.dim(3);
      const float* px = x.data<float>();
      const float* pw = w.data<float>();
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      float* pgw = gw.data<float>();
      float* pgb = gb.data<float>();
      for (std::int64_t n = 0; n < os.dim(0); ++n) {
        for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
          for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
            for (std::int64_t oc = 0; oc < os.dim(3); ++oc) {
              float grad = pgy[((n * os.dim(1) + oy) * os.dim(2) + ox) * os.dim(3) + oc];
              if (grad == 0.0f) continue;
              pgb[oc] += grad;
              for (int fy = 0; fy < g.kh; ++fy) {
                const std::int64_t iy = oy * node.attrs.stride_h - g.pad_h + fy;
                if (iy < 0 || iy >= is.dim(1)) continue;
                for (int fx = 0; fx < g.kw; ++fx) {
                  const std::int64_t ix = ox * node.attrs.stride_w - g.pad_w + fx;
                  if (ix < 0 || ix >= is.dim(2)) continue;
                  const std::int64_t xoff = ((n * is.dim(1) + iy) * is.dim(2) + ix) * in_ch;
                  const std::int64_t woff = ((oc * g.kh + fy) * g.kw + fx) * in_ch;
                  for (std::int64_t ic = 0; ic < in_ch; ++ic) {
                    pgw[woff + ic] += grad * px[xoff + ic];
                    pgx[xoff + ic] += grad * pw[woff + ic];
                  }
                }
              }
            }
          }
        }
      }
      break;
    }
    case OpType::kDepthwiseConv2D: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const Tensor& x = acts_[in_id];
      Tensor& gx = grads_[in_id];
      const Tensor& w = node.weights[0];
      Tensor& gw = wgrads_[id][0];
      Tensor& gb = wgrads_[id][1];
      const Shape& is = x.shape();
      const Shape& os = node.output_shape;
      const Shape& fs = w.shape();
      ConvGeom g = conv_geom(node, is, os, fs);
      const std::int64_t ch = is.dim(3);
      MLX_CHECK_EQ(fs.dim(3), ch)
          << "trainer DepthwiseConv2D supports depth_multiplier == 1 only ('"
          << node.name << "')";
      const float* px = x.data<float>();
      const float* pw = w.data<float>();
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      float* pgw = gw.data<float>();
      float* pgb = gb.data<float>();
      for (std::int64_t n = 0; n < os.dim(0); ++n) {
        for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
          for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
            for (std::int64_t c = 0; c < ch; ++c) {
              float grad = pgy[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c];
              if (grad == 0.0f) continue;
              pgb[c] += grad;
              for (int fy = 0; fy < g.kh; ++fy) {
                const std::int64_t iy = oy * node.attrs.stride_h - g.pad_h + fy;
                if (iy < 0 || iy >= is.dim(1)) continue;
                for (int fx = 0; fx < g.kw; ++fx) {
                  const std::int64_t ix = ox * node.attrs.stride_w - g.pad_w + fx;
                  if (ix < 0 || ix >= is.dim(2)) continue;
                  const std::int64_t xoff = ((n * is.dim(1) + iy) * is.dim(2) + ix) * ch + c;
                  const std::int64_t woff = (static_cast<std::int64_t>(fy) * g.kw + fx) * ch + c;
                  pgw[woff] += grad * px[xoff];
                  pgx[xoff] += grad * pw[woff];
                }
              }
            }
          }
        }
      }
      break;
    }
    case OpType::kFullyConnected: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const Tensor& x = acts_[in_id];
      Tensor& gx = grads_[in_id];
      const Tensor& w = node.weights[0];
      Tensor& gw = wgrads_[id][0];
      Tensor& gb = wgrads_[id][1];
      const std::int64_t batch = node.output_shape.dim(0);
      const std::int64_t out_dim = w.shape().dim(0);
      const std::int64_t in_dim = w.shape().dim(1);
      const float* px = x.data<float>();
      const float* pw = w.data<float>();
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      float* pgw = gw.data<float>();
      float* pgb = gb.data<float>();
      for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t o = 0; o < out_dim; ++o) {
          float grad = pgy[n * out_dim + o];
          if (grad == 0.0f) continue;
          pgb[o] += grad;
          for (std::int64_t i = 0; i < in_dim; ++i) {
            pgw[o * in_dim + i] += grad * px[n * in_dim + i];
            pgx[n * in_dim + i] += grad * pw[o * in_dim + i];
          }
        }
      }
      break;
    }
    case OpType::kAvgPool2D: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const Tensor& x = acts_[in_id];
      Tensor& gx = grads_[in_id];
      const Shape& is = x.shape();
      const Shape& os = node.output_shape;
      const int fh = node.attrs.filter_h;
      const int fw = node.attrs.filter_w;
      const std::int64_t ch = is.dim(3);
      const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                     ? same_pad_before(is.dim(1), fh, node.attrs.stride_h, os.dim(1))
                                     : 0;
      const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                     ? same_pad_before(is.dim(2), fw, node.attrs.stride_w, os.dim(2))
                                     : 0;
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      for (std::int64_t n = 0; n < os.dim(0); ++n) {
        for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
          for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
            for (std::int64_t c = 0; c < ch; ++c) {
              int count = 0;
              for (int fy = 0; fy < fh; ++fy) {
                const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
                if (iy < 0 || iy >= is.dim(1)) continue;
                for (int fx = 0; fx < fw; ++fx) {
                  const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
                  if (ix < 0 || ix >= is.dim(2)) continue;
                  ++count;
                }
              }
              if (count == 0) continue;
              float grad =
                  pgy[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c] /
                  static_cast<float>(count);
              for (int fy = 0; fy < fh; ++fy) {
                const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
                if (iy < 0 || iy >= is.dim(1)) continue;
                for (int fx = 0; fx < fw; ++fx) {
                  const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
                  if (ix < 0 || ix >= is.dim(2)) continue;
                  pgx[((n * is.dim(1) + iy) * is.dim(2) + ix) * ch + c] += grad;
                }
              }
            }
          }
        }
      }
      break;
    }
    case OpType::kMaxPool2D: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const Tensor& x = acts_[in_id];
      Tensor& gx = grads_[in_id];
      const Tensor& y = acts_[id];
      const Shape& is = x.shape();
      const Shape& os = node.output_shape;
      const int fh = node.attrs.filter_h;
      const int fw = node.attrs.filter_w;
      const std::int64_t ch = is.dim(3);
      const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                     ? same_pad_before(is.dim(1), fh, node.attrs.stride_h, os.dim(1))
                                     : 0;
      const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                     ? same_pad_before(is.dim(2), fw, node.attrs.stride_w, os.dim(2))
                                     : 0;
      const float* px = x.data<float>();
      const float* py = y.data<float>();
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      for (std::int64_t n = 0; n < os.dim(0); ++n) {
        for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
          for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
            for (std::int64_t c = 0; c < ch; ++c) {
              float grad = pgy[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c];
              if (grad == 0.0f) continue;
              float max_v = py[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c];
              bool routed = false;
              for (int fy = 0; fy < fh && !routed; ++fy) {
                const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
                if (iy < 0 || iy >= is.dim(1)) continue;
                for (int fx = 0; fx < fw && !routed; ++fx) {
                  const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
                  if (ix < 0 || ix >= is.dim(2)) continue;
                  const std::int64_t off = ((n * is.dim(1) + iy) * is.dim(2) + ix) * ch + c;
                  if (px[off] == max_v) {
                    pgx[off] += grad;
                    routed = true;
                  }
                }
              }
            }
          }
        }
      }
      break;
    }
    case OpType::kMean: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      Tensor& gx = grads_[in_id];
      const Shape& is = acts_[in_id].shape();
      const std::int64_t hw = is.dim(1) * is.dim(2);
      const std::int64_t ch = is.dim(3);
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      for (std::int64_t n = 0; n < is.dim(0); ++n) {
        for (std::int64_t p = 0; p < hw; ++p) {
          for (std::int64_t c = 0; c < ch; ++c) {
            pgx[(n * hw + p) * ch + c] +=
                pgy[n * ch + c] / static_cast<float>(hw);
          }
        }
      }
      break;
    }
    case OpType::kPad: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      Tensor& gx = grads_[in_id];
      const Shape& is = acts_[in_id].shape();
      const Shape& os = node.output_shape;
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      for (std::int64_t n = 0; n < is.dim(0); ++n) {
        for (std::int64_t h = 0; h < is.dim(1); ++h) {
          for (std::int64_t w = 0; w < is.dim(2); ++w) {
            for (std::int64_t c = 0; c < is.dim(3); ++c) {
              pgx[((n * is.dim(1) + h) * is.dim(2) + w) * is.dim(3) + c] +=
                  pgy[((n * os.dim(1) + h + node.attrs.pad_top) * os.dim(2) + w +
                       node.attrs.pad_left) * os.dim(3) + c];
            }
          }
        }
      }
      break;
    }
    case OpType::kAdd: {
      for (int input : node.inputs) {
        Tensor& gx = grads_[static_cast<std::size_t>(input)];
        float* pgx = gx.data<float>();
        const float* pgy = gy.data<float>();
        for (std::int64_t i = 0; i < gy.num_elements(); ++i) pgx[i] += pgy[i];
      }
      break;
    }
    case OpType::kSub: {
      const float* pgy = gy.data<float>();
      float* pga = grads_[static_cast<std::size_t>(node.inputs[0])].data<float>();
      float* pgb = grads_[static_cast<std::size_t>(node.inputs[1])].data<float>();
      for (std::int64_t i = 0; i < gy.num_elements(); ++i) {
        pga[i] += pgy[i];
        pgb[i] -= pgy[i];
      }
      break;
    }
    case OpType::kMul: {
      const auto a_id = static_cast<std::size_t>(node.inputs[0]);
      const auto b_id = static_cast<std::size_t>(node.inputs[1]);
      const Tensor& a = acts_[a_id];
      const Tensor& b = acts_[b_id];
      float* pga = grads_[a_id].data<float>();
      float* pgb = grads_[b_id].data<float>();
      const float* pa = a.data<float>();
      const float* pb = b.data<float>();
      const float* pgy = gy.data<float>();
      if (a.shape() == b.shape()) {
        for (std::int64_t i = 0; i < gy.num_elements(); ++i) {
          pga[i] += pgy[i] * pb[i];
          pgb[i] += pgy[i] * pa[i];
        }
      } else {
        const Shape& as = a.shape();
        const std::int64_t hw = as.dim(1) * as.dim(2);
        const std::int64_t ch = as.dim(3);
        for (std::int64_t n = 0; n < as.dim(0); ++n) {
          for (std::int64_t p = 0; p < hw; ++p) {
            for (std::int64_t c = 0; c < ch; ++c) {
              const std::int64_t off = (n * hw + p) * ch + c;
              pga[off] += pgy[off] * pb[n * ch + c];
              pgb[n * ch + c] += pgy[off] * pa[off];
            }
          }
        }
      }
      break;
    }
    case OpType::kConcat: {
      const Shape& os = node.output_shape;
      const std::int64_t out_ch = os.dim(os.rank() - 1);
      std::int64_t outer = os.num_elements() / out_ch;
      const float* pgy = gy.data<float>();
      std::int64_t ch_offset = 0;
      for (int input : node.inputs) {
        Tensor& gx = grads_[static_cast<std::size_t>(input)];
        const Shape& is = acts_[static_cast<std::size_t>(input)].shape();
        const std::int64_t in_ch = is.dim(is.rank() - 1);
        float* pgx = gx.data<float>();
        for (std::int64_t row = 0; row < outer; ++row) {
          for (std::int64_t c = 0; c < in_ch; ++c) {
            pgx[row * in_ch + c] += pgy[row * out_ch + ch_offset + c];
          }
        }
        ch_offset += in_ch;
      }
      break;
    }
    case OpType::kRelu:
    case OpType::kRelu6: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const float* px = acts_[in_id].data<float>();
      float* pgx = grads_[in_id].data<float>();
      const float* pgy = gy.data<float>();
      const float hi = node.type == OpType::kRelu6 ? 6.0f : 3.4e38f;
      for (std::int64_t i = 0; i < gy.num_elements(); ++i) {
        if (px[i] > 0.0f && px[i] < hi) pgx[i] += pgy[i];
      }
      break;
    }
    case OpType::kHardSwish: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const float* px = acts_[in_id].data<float>();
      float* pgx = grads_[in_id].data<float>();
      const float* pgy = gy.data<float>();
      for (std::int64_t i = 0; i < gy.num_elements(); ++i) {
        float x = px[i];
        float d = x <= -3.0f ? 0.0f : (x >= 3.0f ? 1.0f : (2.0f * x + 3.0f) / 6.0f);
        pgx[i] += pgy[i] * d;
      }
      break;
    }
    case OpType::kSigmoid: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const float* py = acts_[id].data<float>();
      float* pgx = grads_[in_id].data<float>();
      const float* pgy = gy.data<float>();
      for (std::int64_t i = 0; i < gy.num_elements(); ++i) {
        pgx[i] += pgy[i] * py[i] * (1.0f - py[i]);
      }
      break;
    }
    case OpType::kTanh: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const float* py = acts_[id].data<float>();
      float* pgx = grads_[in_id].data<float>();
      const float* pgy = gy.data<float>();
      for (std::int64_t i = 0; i < gy.num_elements(); ++i) {
        pgx[i] += pgy[i] * (1.0f - py[i] * py[i]);
      }
      break;
    }
    case OpType::kSoftmax: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const Tensor& y = acts_[id];
      const Shape& s = y.shape();
      const std::int64_t ch = s.dim(s.rank() - 1);
      const std::int64_t rows = y.num_elements() / ch;
      const float* py = y.data<float>();
      const float* pgy = gy.data<float>();
      float* pgx = grads_[in_id].data<float>();
      for (std::int64_t r = 0; r < rows; ++r) {
        double dot = 0.0;
        for (std::int64_t c = 0; c < ch; ++c) dot += static_cast<double>(pgy[r * ch + c]) * py[r * ch + c];
        for (std::int64_t c = 0; c < ch; ++c) {
          pgx[r * ch + c] += static_cast<float>(
              py[r * ch + c] * (pgy[r * ch + c] - dot));
        }
      }
      break;
    }
    case OpType::kReshape: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      float* pgx = grads_[in_id].data<float>();
      const float* pgy = gy.data<float>();
      for (std::int64_t i = 0; i < gy.num_elements(); ++i) pgx[i] += pgy[i];
      break;
    }
    case OpType::kBatchNorm: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const Tensor& x = acts_[in_id];
      Tensor& gx = grads_[in_id];
      const Node& n = node;
      const BnCache& cache = bn_cache_[id];
      const Shape& is = x.shape();
      const std::int64_t ch = is.dim(is.rank() - 1);
      const std::int64_t rows = is.num_elements() / ch;
      const float* px = x.data<float>();
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      const float* gamma = n.weights[0].data<float>();
      float* ggamma = wgrads_[id][0].data<float>();
      float* gbeta = wgrads_[id][1].data<float>();
      for (std::int64_t c = 0; c < ch; ++c) {
        const float mean = cache.mean[static_cast<std::size_t>(c)];
        const float inv_std = cache.inv_std[static_cast<std::size_t>(c)];
        double sum_gy = 0.0;
        double sum_gy_xhat = 0.0;
        for (std::int64_t r = 0; r < rows; ++r) {
          float xhat = (px[r * ch + c] - mean) * inv_std;
          sum_gy += pgy[r * ch + c];
          sum_gy_xhat += static_cast<double>(pgy[r * ch + c]) * xhat;
        }
        ggamma[c] += static_cast<float>(sum_gy_xhat);
        gbeta[c] += static_cast<float>(sum_gy);
        const double inv_rows = 1.0 / static_cast<double>(rows);
        for (std::int64_t r = 0; r < rows; ++r) {
          float xhat = (px[r * ch + c] - mean) * inv_std;
          double dx = gamma[c] * inv_std *
                      (pgy[r * ch + c] - sum_gy * inv_rows -
                       xhat * sum_gy_xhat * inv_rows);
          pgx[r * ch + c] += static_cast<float>(dx);
        }
      }
      break;
    }
    case OpType::kEmbedding: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      const Tensor& ids = acts_[in_id];
      Tensor& gtab = wgrads_[id][0];
      const std::int32_t* pid = ids.data<std::int32_t>();
      const float* pgy = gy.data<float>();
      float* pg = gtab.data<float>();
      const std::int64_t dim = node.weights[0].shape().dim(1);
      for (std::int64_t i = 0; i < ids.num_elements(); ++i) {
        for (std::int64_t d = 0; d < dim; ++d) {
          pg[pid[i] * dim + d] += pgy[i * dim + d];
        }
      }
      break;
    }
    case OpType::kUpsampleNearest2x: {
      const auto in_id = static_cast<std::size_t>(node.inputs[0]);
      Tensor& gx = grads_[in_id];
      const Shape& is = acts_[in_id].shape();
      const Shape& os = node.output_shape;
      const float* pgy = gy.data<float>();
      float* pgx = gx.data<float>();
      const std::int64_t ch = is.dim(3);
      for (std::int64_t n = 0; n < is.dim(0); ++n) {
        for (std::int64_t y2 = 0; y2 < os.dim(1); ++y2) {
          for (std::int64_t x2 = 0; x2 < os.dim(2); ++x2) {
            for (std::int64_t c = 0; c < ch; ++c) {
              pgx[((n * is.dim(1) + y2 / 2) * is.dim(2) + x2 / 2) * ch + c] +=
                  pgy[((n * os.dim(1) + y2) * os.dim(2) + x2) * ch + c];
            }
          }
        }
      }
      break;
    }
    case OpType::kQuantize:
    case OpType::kDequantize:
      MLX_FAIL() << "quantized ops are not trainable";
  }
}

void Trainer::backward(
    const std::vector<std::pair<int, Tensor>>& output_grads) {
  for (Tensor& g : grads_) g.fill_zero();
  for (const auto& [node_id, grad] : output_grads) {
    Tensor& slot = grads_[static_cast<std::size_t>(node_id)];
    MLX_CHECK(grad.shape().num_elements() == slot.num_elements());
    const float* src = grad.data<float>();
    float* dst = slot.data<float>();
    for (std::int64_t i = 0; i < slot.num_elements(); ++i) dst[i] += src[i];
  }
  for (auto it = model_->nodes.rbegin(); it != model_->nodes.rend(); ++it) {
    backward_node(*it);
  }
  ++accum_count_;
}

double Trainer::train_sample(const std::vector<Tensor>& inputs,
                             int logits_node, int label) {
  forward(inputs);
  LossGrad lg = softmax_cross_entropy(acts_[static_cast<std::size_t>(logits_node)], label);
  std::vector<std::pair<int, Tensor>> seeds;
  seeds.emplace_back(logits_node, std::move(lg.grad));
  backward(seeds);
  return lg.loss;
}

void Trainer::step() {
  MLX_CHECK_GT(accum_count_, 0) << "step() without accumulated gradients";
  ++step_count_;
  const double bias1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(step_count_));
  const float scale = 1.0f / static_cast<float>(accum_count_);
  for (Node& n : model_->nodes) {
    const auto id = static_cast<std::size_t>(n.id);
    for (std::size_t wi = 0; wi < n.weights.size(); ++wi) {
      // BN moving stats (weights 2,3) are not gradient-trained.
      if (n.type == OpType::kBatchNorm && wi >= 2) continue;
      Tensor& w = n.weights[wi];
      if (w.dtype() != DType::kF32) continue;
      float* pw = w.data<float>();
      const float* pg = wgrads_[id][wi].data<float>();
      float* pm = adam_m_[id][wi].data<float>();
      float* pv = adam_v_[id][wi].data<float>();
      for (std::int64_t i = 0; i < w.num_elements(); ++i) {
        float g = pg[i] * scale + cfg_.weight_decay * pw[i];
        pm[i] = cfg_.beta1 * pm[i] + (1.0f - cfg_.beta1) * g;
        pv[i] = cfg_.beta2 * pv[i] + (1.0f - cfg_.beta2) * g * g;
        double mhat = pm[i] / bias1;
        double vhat = pv[i] / bias2;
        pw[i] -= static_cast<float>(cfg_.learning_rate * mhat /
                                    (std::sqrt(vhat) + cfg_.adam_eps));
      }
    }
  }
  zero_grad();
}

const Tensor& Trainer::activation(int node_id) const {
  return acts_[static_cast<std::size_t>(node_id)];
}

const Tensor& Trainer::weight_grad(int node_id,
                                   std::size_t weight_index) const {
  return wgrads_.at(static_cast<std::size_t>(node_id)).at(weight_index);
}

void copy_weights(const Graph& src, Graph* dst) {
  MLX_CHECK_EQ(src.nodes.size(), dst->nodes.size());
  for (std::size_t i = 0; i < src.nodes.size(); ++i) {
    const Node& s = src.nodes[i];
    Node& d = dst->nodes[i];
    MLX_CHECK(s.type == d.type) << "graph mismatch at node " << i;
    MLX_CHECK_EQ(s.weights.size(), d.weights.size());
    for (std::size_t w = 0; w < s.weights.size(); ++w) {
      MLX_CHECK(s.weights[w].shape() == d.weights[w].shape());
      d.weights[w] = s.weights[w];
    }
  }
}

}  // namespace mlexray
