// Synthetic keyword-spotting dataset (stand-in for Speech Commands).
//
// Eight "keywords", each a distinct time-frequency signature (tones, chirps,
// two-tone sequences, AM bursts) over white noise. The spectrogram pipeline
// in src/preprocess/audio.h turns waveforms into model input; the Fig-4c
// experiment injects the log/linear scale mismatch there.
#pragma once

#include <vector>

#include "src/common/rng.h"

namespace mlexray {

struct SpeechExample {
  std::vector<float> wave;  // kSamples mono samples in [-1, 1]
  int label = 0;
};

class SynthSpeech {
 public:
  static constexpr int kClasses = 8;
  static constexpr int kSamples = 2048;
  static constexpr float kSampleRate = 4096.0f;

  static const char* class_name(int label);
  static std::vector<float> render(int label, Pcg32& rng);
  static std::vector<SpeechExample> make(int per_class, std::uint64_t seed);
};

}  // namespace mlexray
