#include "src/datasets/synth_image.h"

#include <algorithm>
#include <cmath>

namespace mlexray {

namespace {

constexpr int kS = SynthImageNet::kSensorSize;

struct Rgb {
  int r, g, b;
};

void put(Tensor& img, int y, int x, Rgb c) {
  if (y < 0 || y >= kS || x < 0 || x >= kS) return;
  std::uint8_t* p = img.data<std::uint8_t>() + (static_cast<std::int64_t>(y) * kS + x) * 3;
  p[0] = static_cast<std::uint8_t>(std::clamp(c.r, 0, 255));
  p[1] = static_cast<std::uint8_t>(std::clamp(c.g, 0, 255));
  p[2] = static_cast<std::uint8_t>(std::clamp(c.b, 0, 255));
}

Tensor noisy_background(Pcg32& rng, int base) {
  Tensor img = Tensor::u8(Shape{kS, kS, 3});
  std::uint8_t* p = img.data<std::uint8_t>();
  for (std::int64_t i = 0; i < img.num_elements(); ++i) {
    int v = base + static_cast<int>(rng.next_below(25)) - 12;
    p[i] = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
  }
  return img;
}

void draw_blob(Tensor& img, Pcg32& rng, Rgb color) {
  const int cy = 24 + static_cast<int>(rng.next_below(48));
  const int cx = 24 + static_cast<int>(rng.next_below(48));
  const int radius = 15 + static_cast<int>(rng.next_below(12));
  for (int y = cy - radius; y <= cy + radius; ++y) {
    for (int x = cx - radius; x <= cx + radius; ++x) {
      int dy = y - cy, dx = x - cx;
      if (dy * dy + dx * dx <= radius * radius) {
        int jitter = static_cast<int>(rng.next_below(30)) - 15;
        put(img, y, x,
            {color.r + jitter, color.g + jitter, color.b + jitter});
      }
    }
  }
}

void draw_stripes(Tensor& img, Pcg32& rng, bool horizontal, int period,
                  Rgb bright) {
  const int phase = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(period)));
  for (int y = 0; y < kS; ++y) {
    for (int x = 0; x < kS; ++x) {
      int t = horizontal ? y : x;
      if (((t + phase) / (period / 2)) % 2 == 0) {
        int jitter = static_cast<int>(rng.next_below(20)) - 10;
        put(img, y, x, {bright.r + jitter, bright.g + jitter, bright.b + jitter});
      }
    }
  }
}

void draw_diagonal(Tensor& img, Pcg32& rng, bool rising, Rgb bright) {
  const int period = 18;
  const int phase = static_cast<int>(rng.next_below(period));
  for (int y = 0; y < kS; ++y) {
    for (int x = 0; x < kS; ++x) {
      int t = rising ? (x + y) : (x - y + kS);
      if (((t + phase) / (period / 2)) % 2 == 0) {
        int jitter = static_cast<int>(rng.next_below(20)) - 10;
        put(img, y, x, {bright.r + jitter, bright.g + jitter, bright.b + jitter});
      }
    }
  }
}

void draw_gradient(Tensor& img, Pcg32& rng, bool top_down) {
  for (int y = 0; y < kS; ++y) {
    for (int x = 0; x < kS; ++x) {
      int t = top_down ? y : x;
      int v = 40 + t * 2 + static_cast<int>(rng.next_below(16)) - 8;
      put(img, y, x, {v, v, v});
    }
  }
}

void draw_checker(Tensor& img, Pcg32& rng, int cell) {
  const int phase_y = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(cell)));
  const int phase_x = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(cell)));
  for (int y = 0; y < kS; ++y) {
    for (int x = 0; x < kS; ++x) {
      bool on = (((y + phase_y) / cell) + ((x + phase_x) / cell)) % 2 == 0;
      int v = on ? 200 : 55;
      v += static_cast<int>(rng.next_below(16)) - 8;
      put(img, y, x, {v, v, v});
    }
  }
}

void draw_ring(Tensor& img, Pcg32& rng, bool filled) {
  const int cy = 36 + static_cast<int>(rng.next_below(24));
  const int cx = 36 + static_cast<int>(rng.next_below(24));
  const int radius = 21 + static_cast<int>(rng.next_below(9));
  for (int y = cy - radius; y <= cy + radius; ++y) {
    for (int x = cx - radius; x <= cx + radius; ++x) {
      int dy = y - cy, dx = x - cx;
      int d2 = dy * dy + dx * dx;
      bool inside = filled ? d2 <= radius * radius
                           : (d2 <= radius * radius &&
                              d2 >= (radius - 4) * (radius - 4));
      if (inside) {
        int v = 210 + static_cast<int>(rng.next_below(30)) - 15;
        put(img, y, x, {v, v, v});
      }
    }
  }
}

}  // namespace

const char* SynthImageNet::class_name(int label) {
  static const char* kNames[kClasses] = {
      "red_blob",      "blue_blob",       "green_blob",   "yellow_blob",
      "h_stripes",     "v_stripes",       "diag_rising",  "diag_falling",
      "grad_top_down", "grad_left_right", "fine_checker", "coarse_checker"};
  MLX_CHECK(label >= 0 && label < kClasses);
  return kNames[label];
}

Tensor SynthImageNet::render(int label, Pcg32& rng) {
  Tensor img = noisy_background(rng, 70);
  switch (label) {
    case 0: draw_blob(img, rng, {220, 50, 50}); break;   // red (R<->B pair)
    case 1: draw_blob(img, rng, {50, 50, 220}); break;   // blue (pair)
    case 2: draw_blob(img, rng, {50, 210, 50}); break;   // green (swap-invariant)
    case 3: draw_blob(img, rng, {220, 210, 50}); break;  // yellow -> cyan
    case 4: draw_stripes(img, rng, /*horizontal=*/true, 18, {185, 185, 185}); break;
    case 5: draw_stripes(img, rng, /*horizontal=*/false, 18, {185, 185, 185}); break;
    case 6: draw_diagonal(img, rng, /*rising=*/true, {170, 170, 170}); break;
    case 7: draw_diagonal(img, rng, /*rising=*/false, {170, 170, 170}); break;
    case 8: draw_gradient(img, rng, /*top_down=*/true); break;
    case 9: draw_gradient(img, rng, /*top_down=*/false); break;
    case 10: draw_checker(img, rng, 2); break;  // fine (aliases under bilinear)
    case 11: draw_checker(img, rng, 9); break;  // coarse
    default: MLX_FAIL() << "bad label " << label;
  }
  return img;
}

std::vector<SensorExample> SynthImageNet::make(int per_class,
                                               std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<SensorExample> out;
  out.reserve(static_cast<std::size_t>(per_class) * kClasses);
  for (int c = 0; c < kClasses; ++c) {
    for (int i = 0; i < per_class; ++i) {
      SensorExample ex;
      ex.image_u8 = render(c, rng);
      ex.label = c;
      out.push_back(std::move(ex));
    }
  }
  return out;
}

const char* SynthCoco::class_name(int cls) {
  static const char* kNames[kClasses] = {"red_box", "blue_box", "green_disc",
                                         "yellow_disc"};
  MLX_CHECK(cls >= 0 && cls < kClasses);
  return kNames[cls];
}

DetExample SynthCoco::render(Pcg32& rng) {
  DetExample ex;
  ex.image_u8 = noisy_background(rng, 80);
  const int count = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < count; ++i) {
    DetObject obj;
    obj.cls = static_cast<int>(rng.next_below(kClasses));
    const int size = 21 + static_cast<int>(rng.next_below(21));
    const int cy = size / 2 + static_cast<int>(rng.next_below(static_cast<std::uint32_t>(kS - size)));
    const int cx = size / 2 + static_cast<int>(rng.next_below(static_cast<std::uint32_t>(kS - size)));
    obj.cx = static_cast<float>(cx) / kS;
    obj.cy = static_cast<float>(cy) / kS;
    obj.w = static_cast<float>(size) / kS;
    obj.h = static_cast<float>(size) / kS;
    Rgb colors[kClasses] = {
        {210, 60, 60}, {60, 60, 210}, {60, 200, 80}, {220, 210, 60}};
    Rgb c = colors[obj.cls];
    const bool disc = obj.cls >= 2;
    for (int y = cy - size / 2; y < cy + size / 2; ++y) {
      for (int x = cx - size / 2; x < cx + size / 2; ++x) {
        if (disc) {
          int dy = y - cy, dx = x - cx;
          if (dy * dy + dx * dx > (size / 2) * (size / 2)) continue;
        }
        int jitter = static_cast<int>(rng.next_below(26)) - 13;
        put(ex.image_u8, y, x, {c.r + jitter, c.g + jitter, c.b + jitter});
      }
    }
    ex.objects.push_back(obj);
  }
  return ex;
}

std::vector<DetExample> SynthCoco::make(int count, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<DetExample> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(render(rng));
  return out;
}

}  // namespace mlexray
