#include "src/datasets/synth_seg.h"

#include <algorithm>

namespace mlexray {

namespace {
constexpr int kN = SynthSeg::kSize;

void put(Tensor& img, Tensor& mask, int y, int x, int r, int g, int b,
         int cls) {
  if (y < 0 || y >= kN || x < 0 || x >= kN) return;
  std::uint8_t* p = img.data<std::uint8_t>() + (static_cast<std::int64_t>(y) * kN + x) * 3;
  p[0] = static_cast<std::uint8_t>(std::clamp(r, 0, 255));
  p[1] = static_cast<std::uint8_t>(std::clamp(g, 0, 255));
  p[2] = static_cast<std::uint8_t>(std::clamp(b, 0, 255));
  mask.data<std::int32_t>()[static_cast<std::int64_t>(y) * kN + x] = cls;
}
}  // namespace

SegExample SynthSeg::render(Pcg32& rng) {
  SegExample ex;
  ex.image_u8 = Tensor::u8(Shape{kN, kN, 3});
  ex.mask = Tensor::i32(Shape{kN, kN});
  std::uint8_t* p = ex.image_u8.data<std::uint8_t>();
  for (std::int64_t i = 0; i < ex.image_u8.num_elements(); ++i) {
    p[i] = static_cast<std::uint8_t>(60 + rng.next_below(24));
  }
  // One disc.
  {
    int cy = 6 + static_cast<int>(rng.next_below(20));
    int cx = 6 + static_cast<int>(rng.next_below(20));
    int radius = 4 + static_cast<int>(rng.next_below(4));
    for (int y = cy - radius; y <= cy + radius; ++y) {
      for (int x = cx - radius; x <= cx + radius; ++x) {
        int dy = y - cy, dx = x - cx;
        if (dy * dy + dx * dx <= radius * radius) {
          put(ex.image_u8, ex.mask, y, x, 200, 80, 80, 1);
        }
      }
    }
  }
  // One square.
  {
    int cy = 6 + static_cast<int>(rng.next_below(20));
    int cx = 6 + static_cast<int>(rng.next_below(20));
    int half = 3 + static_cast<int>(rng.next_below(4));
    for (int y = cy - half; y <= cy + half; ++y) {
      for (int x = cx - half; x <= cx + half; ++x) {
        put(ex.image_u8, ex.mask, y, x, 80, 90, 210, 2);
      }
    }
  }
  // A horizontal stripe band.
  {
    int y0 = static_cast<int>(rng.next_below(kN - 4));
    for (int y = y0; y < y0 + 3; ++y) {
      for (int x = 0; x < kN; ++x) {
        put(ex.image_u8, ex.mask, y, x, 90, 200, 110, 3);
      }
    }
  }
  return ex;
}

std::vector<SegExample> SynthSeg::make(int count, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<SegExample> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(render(rng));
  return out;
}

double SynthSeg::mean_iou(const std::vector<Tensor>& predictions,
                          const std::vector<SegExample>& examples) {
  MLX_CHECK_EQ(predictions.size(), examples.size());
  std::vector<std::int64_t> intersection(kClasses, 0);
  std::vector<std::int64_t> union_count(kClasses, 0);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const std::int32_t* pred = predictions[i].data<std::int32_t>();
    const std::int32_t* gt = examples[i].mask.data<std::int32_t>();
    for (std::int64_t px = 0; px < examples[i].mask.num_elements(); ++px) {
      int p = pred[px];
      int g = gt[px];
      if (p == g) {
        ++intersection[static_cast<std::size_t>(p)];
        ++union_count[static_cast<std::size_t>(p)];
      } else {
        ++union_count[static_cast<std::size_t>(p)];
        ++union_count[static_cast<std::size_t>(g)];
      }
    }
  }
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < kClasses; ++c) {
    if (union_count[static_cast<std::size_t>(c)] == 0) continue;
    sum += static_cast<double>(intersection[static_cast<std::size_t>(c)]) /
           static_cast<double>(union_count[static_cast<std::size_t>(c)]);
    ++present;
  }
  return present > 0 ? sum / present : 0.0;
}

}  // namespace mlexray
