// Synthetic segmentation dataset (stand-in for the paper's Deeplab
// evaluation): scenes of discs / squares / stripe bands over noise with
// dense per-pixel labels.
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace mlexray {

struct SegExample {
  Tensor image_u8;  // [kSize, kSize, 3]
  Tensor mask;      // [kSize, kSize] i32 class ids
};

class SynthSeg {
 public:
  static constexpr int kClasses = 4;  // bg, disc, square, stripe
  static constexpr int kSize = 32;

  static SegExample render(Pcg32& rng);
  static std::vector<SegExample> make(int count, std::uint64_t seed);

  // Mean intersection-over-union between predicted [H,W] i32 labels and GT.
  static double mean_iou(const std::vector<Tensor>& predictions,
                         const std::vector<SegExample>& examples);
};

}  // namespace mlexray
