#include "src/datasets/synth_speech.h"

#include <cmath>

#include "src/common/error.h"

namespace mlexray {

namespace {
constexpr float kPi = 3.14159265358979323846f;
}

const char* SynthSpeech::class_name(int label) {
  static const char* kNames[kClasses] = {"tone_low",   "tone_high",
                                         "chirp_up",   "chirp_down",
                                         "two_tone_lh", "two_tone_hl",
                                         "am_slow",    "am_fast"};
  MLX_CHECK(label >= 0 && label < kClasses);
  return kNames[label];
}

std::vector<float> SynthSpeech::render(int label, Pcg32& rng) {
  std::vector<float> wave(kSamples);
  const float jitter = rng.uniform(0.9f, 1.1f);
  const float phase0 = rng.uniform(0.0f, 2.0f * kPi);
  const float amp = rng.uniform(0.5f, 0.8f);
  for (int i = 0; i < kSamples; ++i) {
    const float t = static_cast<float>(i) / kSampleRate;
    const float progress = static_cast<float>(i) / kSamples;
    float v = 0.0f;
    switch (label) {
      case 0: v = std::sin(2 * kPi * 220.0f * jitter * t + phase0); break;
      case 1: v = std::sin(2 * kPi * 880.0f * jitter * t + phase0); break;
      case 2: {  // chirp up 150->1200 Hz
        float f = (150.0f + 1050.0f * progress) * jitter;
        v = std::sin(2 * kPi * f * t + phase0);
        break;
      }
      case 3: {  // chirp down
        float f = (1200.0f - 1050.0f * progress) * jitter;
        v = std::sin(2 * kPi * f * t + phase0);
        break;
      }
      case 4:  // low then high
        v = progress < 0.5f ? std::sin(2 * kPi * 300.0f * jitter * t + phase0)
                            : std::sin(2 * kPi * 1000.0f * jitter * t + phase0);
        break;
      case 5:  // high then low
        v = progress < 0.5f ? std::sin(2 * kPi * 1000.0f * jitter * t + phase0)
                            : std::sin(2 * kPi * 300.0f * jitter * t + phase0);
        break;
      case 6:  // slow amplitude modulation of a 600 Hz carrier
        v = std::sin(2 * kPi * 600.0f * jitter * t + phase0) *
            (0.5f + 0.5f * std::sin(2 * kPi * 3.0f * t));
        break;
      case 7:  // fast AM
        v = std::sin(2 * kPi * 600.0f * jitter * t + phase0) *
            (0.5f + 0.5f * std::sin(2 * kPi * 17.0f * t));
        break;
      default:
        MLX_FAIL() << "bad label " << label;
    }
    float noise = rng.normal(0.0f, 0.05f);
    wave[static_cast<std::size_t>(i)] = amp * v + noise;
  }
  return wave;
}

std::vector<SpeechExample> SynthSpeech::make(int per_class,
                                             std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<SpeechExample> out;
  out.reserve(static_cast<std::size_t>(per_class) * kClasses);
  for (int c = 0; c < kClasses; ++c) {
    for (int i = 0; i < per_class; ++i) {
      out.push_back({render(c, rng), c});
    }
  }
  return out;
}

}  // namespace mlexray
