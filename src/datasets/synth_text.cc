#include "src/datasets/synth_text.h"

namespace mlexray {

namespace {

const std::vector<std::string>& positive_words() {
  static const std::vector<std::string> kWords = {
      "great", "wonderful", "excellent", "superb",  "delightful",
      "loved", "brilliant", "charming",  "masterful", "gripping"};
  return kWords;
}

const std::vector<std::string>& negative_words() {
  static const std::vector<std::string> kWords = {
      "awful",  "terrible", "boring", "dreadful", "clumsy",
      "hated",  "tedious",  "bland",  "painful",  "forgettable"};
  return kWords;
}

const std::vector<std::string>& neutral_words() {
  static const std::vector<std::string> kWords = {
      "the",   "movie", "film",  "plot",   "actor", "scene", "director",
      "was",   "with",  "and",   "story",  "score", "camera", "a",
      "ending", "cast",  "script", "dialog", "very",  "quite"};
  return kWords;
}

std::string maybe_capitalize(const std::string& word, Pcg32& rng) {
  if (word.empty()) return word;
  std::string out = word;
  std::uint32_t dice = rng.next_below(10);
  if (dice < 3) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  } else if (dice == 3) {
    for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

TextExample SynthImdb::render(Pcg32& rng) {
  TextExample ex;
  ex.label = static_cast<int>(rng.next_below(2));
  const auto& sentiment =
      ex.label == 1 ? positive_words() : negative_words();
  const auto& off_sentiment =
      ex.label == 1 ? negative_words() : positive_words();
  const auto& filler = neutral_words();
  const int length = 8 + static_cast<int>(rng.next_below(12));
  int sentiment_count = 2 + static_cast<int>(rng.next_below(3));
  int off_count = static_cast<int>(rng.next_below(2));  // occasional contrast
  std::vector<std::string> words;
  for (int i = 0; i < length; ++i) {
    const std::string* w;
    if (sentiment_count > 0 && rng.next_below(3) == 0) {
      w = &sentiment[rng.next_below(static_cast<std::uint32_t>(sentiment.size()))];
      --sentiment_count;
    } else if (off_count > 0 && rng.next_below(8) == 0) {
      w = &off_sentiment[rng.next_below(static_cast<std::uint32_t>(off_sentiment.size()))];
      --off_count;
    } else {
      w = &filler[rng.next_below(static_cast<std::uint32_t>(filler.size()))];
    }
    words.push_back(maybe_capitalize(*w, rng));
  }
  // Guarantee at least one sentiment word survives.
  if (sentiment_count >= 2) {
    words.push_back(
        sentiment[rng.next_below(static_cast<std::uint32_t>(sentiment.size()))]);
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i > 0) ex.text += " ";
    ex.text += words[i];
  }
  return ex;
}

std::vector<TextExample> SynthImdb::make(int count, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<TextExample> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(render(rng));
  return out;
}

std::vector<std::string> SynthImdb::corpus_words() {
  std::vector<std::string> all;
  for (const auto& w : positive_words()) all.push_back(w);
  for (const auto& w : negative_words()) all.push_back(w);
  for (const auto& w : neutral_words()) all.push_back(w);
  return all;
}

}  // namespace mlexray
