// Synthetic sentiment dataset (stand-in for IMDB reviews).
//
// Sentences mix sentiment-bearing words with neutral filler; the label is
// the majority sentiment. Random capitalisation is applied so the appendix
// case-folding experiment (different embeddings, identical accuracy) has
// real signal.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace mlexray {

struct TextExample {
  std::string text;
  int label = 0;  // 0 = negative, 1 = positive
};

class SynthImdb {
 public:
  static constexpr int kClasses = 2;

  static TextExample render(Pcg32& rng);
  static std::vector<TextExample> make(int count, std::uint64_t seed);

  // All corpus words (for vocabulary building), lower-case.
  static std::vector<std::string> corpus_words();
};

}  // namespace mlexray
