#include "src/datasets/detection_metrics.h"

#include <algorithm>

namespace mlexray {

namespace {

float iou_impl(float acx, float acy, float aw, float ah, float bcx, float bcy,
               float bw, float bh) {
  const float ax0 = acx - aw / 2, ax1 = acx + aw / 2;
  const float ay0 = acy - ah / 2, ay1 = acy + ah / 2;
  const float bx0 = bcx - bw / 2, bx1 = bcx + bw / 2;
  const float by0 = bcy - bh / 2, by1 = bcy + bh / 2;
  const float ix = std::max(0.0f, std::min(ax1, bx1) - std::max(ax0, bx0));
  const float iy = std::max(0.0f, std::min(ay1, by1) - std::max(ay0, by0));
  const float inter = ix * iy;
  const float uni = aw * ah + bw * bh - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

}  // namespace

float box_iou(const DetObject& a, const DetObject& b) {
  return iou_impl(a.cx, a.cy, a.w, a.h, b.cx, b.cy, b.w, b.h);
}

float box_iou(const DetPrediction& a, const DetObject& b) {
  return iou_impl(a.cx, a.cy, a.w, a.h, b.cx, b.cy, b.w, b.h);
}

std::vector<DetPrediction> non_max_suppression(
    std::vector<DetPrediction> predictions, float iou_threshold,
    float score_threshold) {
  std::sort(predictions.begin(), predictions.end(),
            [](const DetPrediction& a, const DetPrediction& b) {
              return a.score > b.score;
            });
  std::vector<DetPrediction> kept;
  for (const DetPrediction& p : predictions) {
    if (p.score < score_threshold) continue;
    bool suppressed = false;
    for (const DetPrediction& k : kept) {
      if (k.cls != p.cls) continue;
      DetObject as_obj{k.cx, k.cy, k.w, k.h, k.cls};
      if (box_iou(p, as_obj) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(p);
  }
  return kept;
}

double mean_average_precision(
    const std::vector<std::vector<DetPrediction>>& predictions,
    const std::vector<DetExample>& ground_truth, int num_classes,
    float iou_threshold) {
  MLX_CHECK_EQ(predictions.size(), ground_truth.size());
  double ap_sum = 0.0;
  int classes_with_gt = 0;
  for (int cls = 0; cls < num_classes; ++cls) {
    // Collect all predictions of this class with their image index.
    struct Entry {
      float score;
      std::size_t image;
      DetPrediction pred;
    };
    std::vector<Entry> entries;
    int gt_total = 0;
    for (std::size_t img = 0; img < predictions.size(); ++img) {
      for (const DetPrediction& p : predictions[img]) {
        if (p.cls == cls) entries.push_back({p.score, img, p});
      }
      for (const DetObject& o : ground_truth[img].objects) {
        if (o.cls == cls) ++gt_total;
      }
    }
    if (gt_total == 0) continue;
    ++classes_with_gt;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.score > b.score; });
    std::vector<std::vector<bool>> matched(predictions.size());
    for (std::size_t img = 0; img < ground_truth.size(); ++img) {
      matched[img].assign(ground_truth[img].objects.size(), false);
    }
    int tp = 0;
    int fp = 0;
    double ap = 0.0;
    double last_recall = 0.0;
    for (const Entry& e : entries) {
      // Find the best unmatched GT of this class in the image.
      float best_iou = 0.0f;
      int best_gt = -1;
      const auto& objs = ground_truth[e.image].objects;
      for (std::size_t g = 0; g < objs.size(); ++g) {
        if (objs[g].cls != cls || matched[e.image][g]) continue;
        float iou = box_iou(e.pred, objs[g]);
        if (iou > best_iou) {
          best_iou = iou;
          best_gt = static_cast<int>(g);
        }
      }
      if (best_gt >= 0 && best_iou >= iou_threshold) {
        matched[e.image][static_cast<std::size_t>(best_gt)] = true;
        ++tp;
      } else {
        ++fp;
      }
      double recall = static_cast<double>(tp) / gt_total;
      double precision = static_cast<double>(tp) / (tp + fp);
      ap += precision * (recall - last_recall);
      last_recall = recall;
    }
    ap_sum += ap;
  }
  return classes_with_gt > 0 ? ap_sum / classes_with_gt : 0.0;
}

}  // namespace mlexray
