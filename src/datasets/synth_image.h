// Synthetic stand-ins for the paper's image datasets (DESIGN.md §2.3).
//
// SynthImageNet (classification): 12 classes constructed so each deployment
// bug has a realistic failure mode:
//   - color-defined blobs (red/blue swap pair, green invariant under the
//     swap, yellow maps to an unseen cyan): RGB<->BGR confuses a *subset*
//     of classes, giving the paper's moderate 7-19% band;
//   - orientation-defined pairs (horizontal/vertical stripes, rising/falling
//     diagonals, top/left gradients): a 90-degree rotation maps pairs onto
//     each other — the most severe bug, as in Fig 4a;
//   - texture-frequency pair (fine/coarse checker): bilinear resampling
//     aliases the fine texture, the mildest bug;
//   - all classes: normalization range mismatch washes out contrast.
//
// SynthCOCO (detection): scenes with 1-3 colored objects of 4 classes plus
// ground-truth boxes.
//
// Sensor images are u8 RGB at 96x96; models consume 32x32 via the
// preprocessing pipeline. The 3:1 ratio makes bilinear resampling alias the
// fine-checker texture (at 2:1 bilinear degenerates to a box filter and the
// resize bug would be invisible).
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace mlexray {

struct SensorExample {
  Tensor image_u8;  // [64, 64, 3] RGB
  int label = 0;
};

class SynthImageNet {
 public:
  static constexpr int kClasses = 12;
  static constexpr int kSensorSize = 96;

  static const char* class_name(int label);

  // Deterministic render of one example.
  static Tensor render(int label, Pcg32& rng);

  // Balanced dataset: per_class examples of each class.
  static std::vector<SensorExample> make(int per_class, std::uint64_t seed);
};

struct DetObject {
  // Box in normalized [0,1] image coordinates.
  float cx = 0.0f, cy = 0.0f, w = 0.0f, h = 0.0f;
  int cls = 0;  // 0..kClasses-1 (background excluded)
};

struct DetExample {
  Tensor image_u8;  // [64, 64, 3]
  std::vector<DetObject> objects;
};

class SynthCoco {
 public:
  static constexpr int kClasses = 4;
  static constexpr int kSensorSize = 96;

  static const char* class_name(int cls);
  static DetExample render(Pcg32& rng);
  static std::vector<DetExample> make(int count, std::uint64_t seed);
};

}  // namespace mlexray
