// Detection evaluation: IoU and mean average precision at IoU 0.5
// (the COCO-style metric reported in the paper's Fig 4b).
#pragma once

#include <vector>

#include "src/datasets/synth_image.h"

namespace mlexray {

struct DetPrediction {
  float cx = 0.0f, cy = 0.0f, w = 0.0f, h = 0.0f;
  int cls = 0;
  float score = 0.0f;
};

// Intersection-over-union of two center-format boxes.
float box_iou(const DetObject& a, const DetObject& b);
float box_iou(const DetPrediction& a, const DetObject& b);

// Average precision for one class across a dataset (continuous
// interpolation), then the mean over classes with ground truth present.
double mean_average_precision(
    const std::vector<std::vector<DetPrediction>>& predictions,
    const std::vector<DetExample>& ground_truth, int num_classes,
    float iou_threshold = 0.5f);

// Greedy non-maximum suppression per class.
std::vector<DetPrediction> non_max_suppression(
    std::vector<DetPrediction> predictions, float iou_threshold = 0.5f,
    float score_threshold = 0.3f);

}  // namespace mlexray
