// Checkpoint -> deployment model conversion.
//
// Reproduces the paper's §2 "Model Optimization" step: BatchNorm folding
// into the preceding conv/depthwise/fc weights, fusion of ReLU/ReLU6
// activation nodes into their producers, and dead-node elimination. The
// result is the "Mobile" (optimized 32-bit float) model variant of Fig 5.
#pragma once

#include "src/graph/graph.h"

namespace mlexray {

struct ConvertOptions {
  bool fold_batch_norm = true;
  bool fuse_activations = true;
};

// Returns the converted inference model; the input (training) model is
// untouched. Weights are deep-copied.
Graph convert_for_inference(const Graph& checkpoint,
                            ConvertOptions options = {});

}  // namespace mlexray
