#include "src/convert/converter.h"

#include <cmath>
#include <map>
#include <set>

namespace mlexray {

namespace {

bool is_conv_like(OpType type) {
  return type == OpType::kConv2D || type == OpType::kDepthwiseConv2D ||
         type == OpType::kFullyConnected;
}

// Output-channel count and the per-element channel index stride pattern for
// weight folding. For Conv2D/FC the out-channel is the leading axis; for
// DepthwiseConv2D it is the trailing axis of the [1,kh,kw,ch] filter.
void fold_bn_into(Node& producer, const Node& bn) {
  const float* gamma = bn.weights[0].data<float>();
  const float* beta = bn.weights[1].data<float>();
  const float* mean = bn.weights[2].data<float>();
  const float* var = bn.weights[3].data<float>();
  const float eps = bn.attrs.epsilon;

  Tensor& filter = producer.weights[0];
  Tensor& bias = producer.weights[1];
  float* w = filter.data<float>();
  float* b = bias.data<float>();
  const std::int64_t out_ch = bias.num_elements();

  std::vector<float> scale(static_cast<std::size_t>(out_ch));
  for (std::int64_t c = 0; c < out_ch; ++c) {
    scale[static_cast<std::size_t>(c)] =
        gamma[c] / std::sqrt(var[c] + eps);
  }
  const std::int64_t total = filter.num_elements();
  if (producer.type == OpType::kDepthwiseConv2D) {
    // channel is the innermost axis
    for (std::int64_t i = 0; i < total; ++i) {
      w[i] *= scale[static_cast<std::size_t>(i % out_ch)];
    }
  } else {
    const std::int64_t per_ch = total / out_ch;
    for (std::int64_t i = 0; i < total; ++i) {
      w[i] *= scale[static_cast<std::size_t>(i / per_ch)];
    }
  }
  for (std::int64_t c = 0; c < out_ch; ++c) {
    b[c] = (b[c] - mean[c]) * scale[static_cast<std::size_t>(c)] + beta[c];
  }
}

Activation activation_of(OpType type) {
  switch (type) {
    case OpType::kRelu: return Activation::kRelu;
    case OpType::kRelu6: return Activation::kRelu6;
    default: return Activation::kNone;
  }
}

}  // namespace

Graph convert_for_inference(const Graph& checkpoint, ConvertOptions options) {
  Graph work = checkpoint;  // deep copy (tensors copy their buffers)

  // Consumer counts (graph outputs count as consumers).
  std::vector<int> consumers(work.nodes.size(), 0);
  for (const Node& n : work.nodes) {
    for (int in : n.inputs) ++consumers[static_cast<std::size_t>(in)];
  }
  for (int out : work.outputs) ++consumers[static_cast<std::size_t>(out)];

  // alias[i] = node that now produces i's value (after a removal).
  std::vector<int> alias(work.nodes.size());
  for (std::size_t i = 0; i < alias.size(); ++i) alias[i] = static_cast<int>(i);
  auto resolve = [&](int id) {
    while (alias[static_cast<std::size_t>(id)] != id) {
      id = alias[static_cast<std::size_t>(id)];
    }
    return id;
  };
  std::set<int> removed;

  if (options.fold_batch_norm) {
    for (Node& n : work.nodes) {
      if (n.type != OpType::kBatchNorm) continue;
      int producer_id = resolve(n.inputs[0]);
      Node& producer = work.node(producer_id);
      if (!is_conv_like(producer.type)) continue;
      if (consumers[static_cast<std::size_t>(producer_id)] != 1) continue;
      fold_bn_into(producer, n);
      alias[static_cast<std::size_t>(n.id)] = producer_id;
      // The producer's effective consumers are now the BN's consumers.
      consumers[static_cast<std::size_t>(producer_id)] =
          consumers[static_cast<std::size_t>(n.id)];
      removed.insert(n.id);
    }
  }

  // Remaining BatchNorms (pre-activation placement, producer not conv-like)
  // become an equivalent per-channel scale/shift: a 1x1 DepthwiseConv2D.
  // This keeps the deployed graph BN-free so full-integer quantization works.
  if (options.fold_batch_norm) {
    for (Node& n : work.nodes) {
      if (n.type != OpType::kBatchNorm || removed.count(n.id) > 0) continue;
      const float* gamma = n.weights[0].data<float>();
      const float* beta = n.weights[1].data<float>();
      const float* mean = n.weights[2].data<float>();
      const float* var = n.weights[3].data<float>();
      const float eps = n.attrs.epsilon;
      const std::int64_t ch = n.weights[0].num_elements();
      Tensor filter = Tensor::f32(Shape{1, 1, 1, ch});
      Tensor bias = Tensor::f32(Shape{ch});
      float* w = filter.data<float>();
      float* b = bias.data<float>();
      for (std::int64_t c = 0; c < ch; ++c) {
        float scale = gamma[c] / std::sqrt(var[c] + eps);
        w[c] = scale;
        b[c] = beta[c] - mean[c] * scale;
      }
      n.type = OpType::kDepthwiseConv2D;
      n.weights.clear();
      n.weights.push_back(std::move(filter));
      n.weights.push_back(std::move(bias));
      n.attrs = OpAttrs{};
    }
  }


  if (options.fuse_activations) {
    for (Node& n : work.nodes) {
      Activation act = activation_of(n.type);
      if (act == Activation::kNone) continue;
      int producer_id = resolve(n.inputs[0]);
      Node& producer = work.node(producer_id);
      const bool fusable_producer =
          is_conv_like(producer.type) || producer.type == OpType::kAdd;
      if (!fusable_producer) continue;
      if (producer.attrs.activation != Activation::kNone) continue;
      if (consumers[static_cast<std::size_t>(producer_id)] != 1) continue;
      producer.attrs.activation = act;
      alias[static_cast<std::size_t>(n.id)] = producer_id;
      consumers[static_cast<std::size_t>(producer_id)] =
          consumers[static_cast<std::size_t>(n.id)];
      removed.insert(n.id);
    }
  }

  // Rebuild with compacted ids.
  Graph result;
  result.name = checkpoint.name;
  result.input_spec = checkpoint.input_spec;
  std::map<int, int> id_map;
  for (const Node& n : work.nodes) {
    if (removed.count(n.id) > 0) continue;
    Node copy = n;
    copy.inputs.clear();
    for (int in : n.inputs) copy.inputs.push_back(id_map.at(resolve(in)));
    int new_id = result.add_node(std::move(copy));
    id_map[n.id] = new_id;
  }
  for (int out : work.outputs) {
    result.outputs.push_back(id_map.at(resolve(out)));
  }
  result.validate();
  result.infer_shapes();
  return result;
}

}  // namespace mlexray
