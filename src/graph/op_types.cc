#include "src/graph/op_types.h"

namespace mlexray {

std::string op_type_name(OpType type) {
  switch (type) {
    case OpType::kInput: return "Input";
    case OpType::kConv2D: return "Conv2D";
    case OpType::kDepthwiseConv2D: return "DepthwiseConv2D";
    case OpType::kFullyConnected: return "FullyConnected";
    case OpType::kAvgPool2D: return "AvgPool2D";
    case OpType::kMaxPool2D: return "MaxPool2D";
    case OpType::kMean: return "Mean";
    case OpType::kPad: return "Pad";
    case OpType::kAdd: return "Add";
    case OpType::kMul: return "Mul";
    case OpType::kConcat: return "Concat";
    case OpType::kRelu: return "Relu";
    case OpType::kRelu6: return "Relu6";
    case OpType::kHardSwish: return "HardSwish";
    case OpType::kSigmoid: return "Sigmoid";
    case OpType::kSoftmax: return "Softmax";
    case OpType::kReshape: return "Reshape";
    case OpType::kBatchNorm: return "BatchNorm";
    case OpType::kQuantize: return "Quantize";
    case OpType::kDequantize: return "Dequantize";
    case OpType::kEmbedding: return "Embedding";
    case OpType::kUpsampleNearest2x: return "UpsampleNearest2x";
    case OpType::kSub: return "Sub";
    case OpType::kTanh: return "Tanh";
  }
  MLX_FAIL() << "unknown op type";
}

std::string activation_name(Activation activation) {
  switch (activation) {
    case Activation::kNone: return "none";
    case Activation::kRelu: return "relu";
    case Activation::kRelu6: return "relu6";
    case Activation::kHardSwish: return "hardswish";
  }
  MLX_FAIL() << "unknown activation";
}

std::string op_latency_group(OpType type) {
  switch (type) {
    case OpType::kDepthwiseConv2D: return "D-Conv";
    case OpType::kConv2D: return "Conv";
    case OpType::kFullyConnected: return "FC";
    case OpType::kMean: return "Mean";
    case OpType::kPad: return "Pad";
    case OpType::kAdd: return "Add";
    case OpType::kSub: return "Add";
    case OpType::kMul: return "Mul";
    case OpType::kHardSwish: return "HSwish";
    case OpType::kSigmoid: return "Logistic";
    case OpType::kTanh: return "Tanh";
    case OpType::kSoftmax: return "Softmax";
    case OpType::kQuantize: return "Quantize";
    case OpType::kDequantize: return "Quantize";
    case OpType::kAvgPool2D: return "Pool";
    case OpType::kMaxPool2D: return "Pool";
    default: return "Other";
  }
}

}  // namespace mlexray
