#include "src/graph/builder.h"

#include <cmath>

namespace mlexray {

GraphBuilder::GraphBuilder(std::string model_name, Pcg32* rng) : rng_(rng) {
  model_.name = std::move(model_name);
}

std::string GraphBuilder::auto_name(const std::string& given,
                                    const char* prefix) {
  if (!given.empty()) return given;
  return std::string(prefix) + "_" + std::to_string(counter_++);
}

Tensor GraphBuilder::he_normal(Shape shape, std::int64_t fan_in) {
  Tensor t = Tensor::f32(shape);
  if (rng_ != nullptr) {
    float stddev = std::sqrt(2.0f / static_cast<float>(std::max<std::int64_t>(1, fan_in)));
    float* p = t.data<float>();
    for (std::int64_t i = 0; i < t.num_elements(); ++i) {
      p[i] = rng_->normal(0.0f, stddev);
    }
  }
  return t;
}

Tensor GraphBuilder::zeros(Shape shape) { return Tensor::f32(shape); }

int GraphBuilder::input(Shape shape, DType dtype, const std::string& name) {
  Node n;
  n.type = OpType::kInput;
  n.name = auto_name(name, "input");
  n.output_shape = shape;
  n.output_dtype = dtype;
  return model_.add_node(std::move(n));
}

int GraphBuilder::conv2d(int in, int out_channels, int kh, int kw, int stride,
                         Padding padding, Activation activation,
                         const std::string& name) {
  const Shape& is = model_.node(in).output_shape;
  std::int64_t in_ch = is.dim(3);
  Node n;
  n.type = OpType::kConv2D;
  n.name = auto_name(name, "conv");
  n.inputs = {in};
  n.weights.push_back(he_normal(Shape{out_channels, kh, kw, in_ch},
                                static_cast<std::int64_t>(kh) * kw * in_ch));
  n.weights.push_back(zeros(Shape{out_channels}));
  n.attrs.stride_h = stride;
  n.attrs.stride_w = stride;
  n.attrs.padding = padding;
  n.attrs.activation = activation;
  return model_.add_node(std::move(n));
}

int GraphBuilder::depthwise_conv2d(int in, int kh, int kw, int stride,
                                   Padding padding, Activation activation,
                                   const std::string& name,
                                   int depth_multiplier) {
  MLX_CHECK_GE(depth_multiplier, 1);
  const Shape& is = model_.node(in).output_shape;
  std::int64_t out_ch = is.dim(3) * depth_multiplier;
  Node n;
  n.type = OpType::kDepthwiseConv2D;
  n.name = auto_name(name, "dwconv");
  n.inputs = {in};
  n.weights.push_back(he_normal(Shape{1, kh, kw, out_ch},
                                static_cast<std::int64_t>(kh) * kw));
  n.weights.push_back(zeros(Shape{out_ch}));
  n.attrs.stride_h = stride;
  n.attrs.stride_w = stride;
  n.attrs.padding = padding;
  n.attrs.activation = activation;
  return model_.add_node(std::move(n));
}

int GraphBuilder::fully_connected(int in, int out_features,
                                  Activation activation,
                                  const std::string& name) {
  const Shape& is = model_.node(in).output_shape;
  std::int64_t flat = 1;
  for (int d = 1; d < is.rank(); ++d) flat *= is.dim(d);
  Node n;
  n.type = OpType::kFullyConnected;
  n.name = auto_name(name, "fc");
  n.inputs = {in};
  n.weights.push_back(he_normal(Shape{out_features, flat}, flat));
  n.weights.push_back(zeros(Shape{out_features}));
  n.attrs.activation = activation;
  return model_.add_node(std::move(n));
}

int GraphBuilder::avg_pool(int in, int window, int stride, Padding padding,
                           const std::string& name) {
  Node n;
  n.type = OpType::kAvgPool2D;
  n.name = auto_name(name, "avgpool");
  n.inputs = {in};
  n.attrs.filter_h = window;
  n.attrs.filter_w = window;
  n.attrs.stride_h = stride;
  n.attrs.stride_w = stride;
  n.attrs.padding = padding;
  return model_.add_node(std::move(n));
}

int GraphBuilder::max_pool(int in, int window, int stride, Padding padding,
                           const std::string& name) {
  Node n;
  n.type = OpType::kMaxPool2D;
  n.name = auto_name(name, "maxpool");
  n.inputs = {in};
  n.attrs.filter_h = window;
  n.attrs.filter_w = window;
  n.attrs.stride_h = stride;
  n.attrs.stride_w = stride;
  n.attrs.padding = padding;
  return model_.add_node(std::move(n));
}

int GraphBuilder::mean(int in, const std::string& name) {
  Node n;
  n.type = OpType::kMean;
  n.name = auto_name(name, "mean");
  n.inputs = {in};
  return model_.add_node(std::move(n));
}

int GraphBuilder::pad(int in, int top, int bottom, int left, int right,
                      const std::string& name) {
  Node n;
  n.type = OpType::kPad;
  n.name = auto_name(name, "pad");
  n.inputs = {in};
  n.attrs.pad_top = top;
  n.attrs.pad_bottom = bottom;
  n.attrs.pad_left = left;
  n.attrs.pad_right = right;
  return model_.add_node(std::move(n));
}

int GraphBuilder::add(int a, int b, Activation activation,
                      const std::string& name) {
  Node n;
  n.type = OpType::kAdd;
  n.name = auto_name(name, "add");
  n.inputs = {a, b};
  n.attrs.activation = activation;
  return model_.add_node(std::move(n));
}

int GraphBuilder::sub(int a, int b, Activation activation,
                      const std::string& name) {
  Node n;
  n.type = OpType::kSub;
  n.name = auto_name(name, "sub");
  n.inputs = {a, b};
  n.attrs.activation = activation;
  return model_.add_node(std::move(n));
}

int GraphBuilder::mul(int a, int b, const std::string& name) {
  Node n;
  n.type = OpType::kMul;
  n.name = auto_name(name, "mul");
  n.inputs = {a, b};
  return model_.add_node(std::move(n));
}

int GraphBuilder::concat(const std::vector<int>& inputs,
                         const std::string& name) {
  Node n;
  n.type = OpType::kConcat;
  n.name = auto_name(name, "concat");
  n.inputs = inputs;
  return model_.add_node(std::move(n));
}

namespace {
Node unary(OpType type, int in, std::string name) {
  Node n;
  n.type = type;
  n.name = std::move(name);
  n.inputs = {in};
  return n;
}
}  // namespace

int GraphBuilder::relu(int in, const std::string& name) {
  return model_.add_node(unary(OpType::kRelu, in, auto_name(name, "relu")));
}
int GraphBuilder::relu6(int in, const std::string& name) {
  return model_.add_node(unary(OpType::kRelu6, in, auto_name(name, "relu6")));
}
int GraphBuilder::hardswish(int in, const std::string& name) {
  return model_.add_node(
      unary(OpType::kHardSwish, in, auto_name(name, "hardswish")));
}
int GraphBuilder::sigmoid(int in, const std::string& name) {
  return model_.add_node(
      unary(OpType::kSigmoid, in, auto_name(name, "sigmoid")));
}
int GraphBuilder::tanh(int in, const std::string& name) {
  return model_.add_node(unary(OpType::kTanh, in, auto_name(name, "tanh")));
}
int GraphBuilder::softmax(int in, const std::string& name) {
  return model_.add_node(
      unary(OpType::kSoftmax, in, auto_name(name, "softmax")));
}

int GraphBuilder::reshape(int in, Shape target, const std::string& name) {
  Node n = unary(OpType::kReshape, in, auto_name(name, "reshape"));
  n.attrs.reshape_to = target;
  return model_.add_node(std::move(n));
}

int GraphBuilder::batch_norm(int in, const std::string& name) {
  const Shape& is = model_.node(in).output_shape;
  std::int64_t ch = is.dim(is.rank() - 1);
  Node n = unary(OpType::kBatchNorm, in, auto_name(name, "bn"));
  Tensor gamma = Tensor::f32(Shape{ch});
  gamma.fill(1.0f);
  Tensor var = Tensor::f32(Shape{ch});
  var.fill(1.0f);
  n.weights.push_back(std::move(gamma));       // gamma
  n.weights.push_back(zeros(Shape{ch}));       // beta
  n.weights.push_back(zeros(Shape{ch}));       // moving mean
  n.weights.push_back(std::move(var));         // moving variance
  return model_.add_node(std::move(n));
}

int GraphBuilder::embedding(int in, int vocab_size, int embed_dim,
                            const std::string& name) {
  Node n = unary(OpType::kEmbedding, in, auto_name(name, "embedding"));
  Tensor table = Tensor::f32(Shape{vocab_size, embed_dim});
  if (rng_ != nullptr) {
    float* p = table.data<float>();
    for (std::int64_t i = 0; i < table.num_elements(); ++i) {
      p[i] = rng_->normal(0.0f, 0.1f);
    }
  }
  n.weights.push_back(std::move(table));
  return model_.add_node(std::move(n));
}

int GraphBuilder::upsample_nearest_2x(int in, const std::string& name) {
  return model_.add_node(
      unary(OpType::kUpsampleNearest2x, in, auto_name(name, "upsample")));
}

Graph GraphBuilder::finish(std::vector<int> outputs) {
  model_.outputs = std::move(outputs);
  model_.validate();
  return std::move(model_);
}

}  // namespace mlexray
