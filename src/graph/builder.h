// Fluent graph construction with He-initialized weights.
//
// Used by the model zoo to define architectures; the training pipeline then
// fits the weights and the converter/quantizer rewrite the graph for
// deployment.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph.h"

namespace mlexray {

class GraphBuilder {
 public:
  // rng may be nullptr for graphs whose weights are assigned externally
  // (weights then default to zero).
  GraphBuilder(std::string model_name, Pcg32* rng);

  int input(Shape shape, DType dtype = DType::kF32,
            const std::string& name = "input");

  int conv2d(int in, int out_channels, int kh, int kw, int stride,
             Padding padding, Activation activation,
             const std::string& name = "");
  // depth_multiplier fans each input channel out to that many consecutive
  // output channels (filter [1, kh, kw, ch * depth_multiplier]).
  int depthwise_conv2d(int in, int kh, int kw, int stride, Padding padding,
                       Activation activation, const std::string& name = "",
                       int depth_multiplier = 1);
  int fully_connected(int in, int out_features, Activation activation,
                      const std::string& name = "");
  int avg_pool(int in, int window, int stride, Padding padding,
               const std::string& name = "");
  int max_pool(int in, int window, int stride, Padding padding,
               const std::string& name = "");
  int mean(int in, const std::string& name = "");
  int pad(int in, int top, int bottom, int left, int right,
          const std::string& name = "");
  int add(int a, int b, Activation activation = Activation::kNone,
          const std::string& name = "");
  int sub(int a, int b, Activation activation = Activation::kNone,
          const std::string& name = "");
  int mul(int a, int b, const std::string& name = "");
  int concat(const std::vector<int>& inputs, const std::string& name = "");
  int relu(int in, const std::string& name = "");
  int relu6(int in, const std::string& name = "");
  int hardswish(int in, const std::string& name = "");
  int sigmoid(int in, const std::string& name = "");
  int tanh(int in, const std::string& name = "");
  int softmax(int in, const std::string& name = "");
  int reshape(int in, Shape target, const std::string& name = "");
  int batch_norm(int in, const std::string& name = "");
  int embedding(int in, int vocab_size, int embed_dim,
                const std::string& name = "");
  int upsample_nearest_2x(int in, const std::string& name = "");

  // Access the model being built (e.g. to inspect intermediate shapes).
  const Graph& model() const { return model_; }
  Shape shape_of(int id) const { return model_.node(id).output_shape; }

  // Finalizes: sets outputs, validates, returns the model by value.
  Graph finish(std::vector<int> outputs);

 private:
  std::string auto_name(const std::string& given, const char* prefix);
  Tensor he_normal(Shape shape, std::int64_t fan_in);
  Tensor zeros(Shape shape);

  Graph model_;
  Pcg32* rng_;
  int counter_ = 0;
};

}  // namespace mlexray
