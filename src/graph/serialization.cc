#include "src/graph/serialization.h"

namespace mlexray {

namespace {

constexpr std::uint32_t kMagic = 0x4d584c4d;  // "MLXM"
constexpr std::uint32_t kVersion = 1;

void write_shape(BinaryWriter& w, const Shape& shape) {
  w.write_u8(static_cast<std::uint8_t>(shape.rank()));
  for (int d = 0; d < shape.rank(); ++d) w.write_i64(shape.dim(d));
}

Shape read_shape(BinaryReader& r) {
  int rank = r.read_u8();
  Shape shape;
  // Build via initializer of correct rank.
  std::int64_t dims[Shape::kMaxRank] = {0};
  for (int d = 0; d < rank; ++d) dims[d] = r.read_i64();
  switch (rank) {
    case 0: return Shape{};
    case 1: return Shape{dims[0]};
    case 2: return Shape{dims[0], dims[1]};
    case 3: return Shape{dims[0], dims[1], dims[2]};
    case 4: return Shape{dims[0], dims[1], dims[2], dims[3]};
    case 5: return Shape{dims[0], dims[1], dims[2], dims[3], dims[4]};
    default: MLX_FAIL() << "bad rank " << rank;
  }
}

void write_quant(BinaryWriter& w, const QuantParams& q) {
  w.write_f32_array(q.scales);
  w.write_i32_array(q.zero_points);
  w.write_i32(q.channel_axis);
}

QuantParams read_quant(BinaryReader& r) {
  QuantParams q;
  q.scales = r.read_f32_array();
  q.zero_points = r.read_i32_array();
  q.channel_axis = r.read_i32();
  return q;
}

}  // namespace

void serialize_tensor(BinaryWriter& w, const Tensor& tensor) {
  w.write_u8(static_cast<std::uint8_t>(tensor.dtype()));
  write_shape(w, tensor.shape());
  write_quant(w, tensor.quant());
  w.write_u64(tensor.byte_size());
  w.write_bytes(tensor.raw_data(), tensor.byte_size());
}

Tensor deserialize_tensor(BinaryReader& r) {
  auto dtype = static_cast<DType>(r.read_u8());
  Shape shape = read_shape(r);
  QuantParams quant = read_quant(r);
  std::uint64_t bytes = r.read_u64();
  Tensor t(dtype, shape);
  MLX_CHECK_EQ(t.byte_size(), bytes) << "tensor payload size mismatch";
  r.read_bytes(t.raw_data(), bytes);
  t.quant() = std::move(quant);
  return t;
}

std::vector<std::uint8_t> serialize_model(const Graph& model) {
  BinaryWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_string(model.name);

  const InputSpec& spec = model.input_spec;
  w.write_i32(spec.height);
  w.write_i32(spec.width);
  w.write_i32(spec.channels);
  w.write_u8(static_cast<std::uint8_t>(spec.channel_order));
  w.write_u8(static_cast<std::uint8_t>(spec.resize));
  w.write_f32(spec.range_lo);
  w.write_f32(spec.range_hi);
  w.write_u8(spec.spectrogram_log_scale ? 1 : 0);

  w.write_u32(static_cast<std::uint32_t>(model.nodes.size()));
  for (const Node& n : model.nodes) {
    w.write_u8(static_cast<std::uint8_t>(n.type));
    w.write_string(n.name);
    w.write_u32(static_cast<std::uint32_t>(n.inputs.size()));
    for (int in : n.inputs) w.write_i32(in);

    const OpAttrs& a = n.attrs;
    w.write_i32(a.stride_h);
    w.write_i32(a.stride_w);
    w.write_u8(static_cast<std::uint8_t>(a.padding));
    w.write_i32(a.filter_h);
    w.write_i32(a.filter_w);
    w.write_u8(static_cast<std::uint8_t>(a.activation));
    w.write_i32(a.pad_top);
    w.write_i32(a.pad_bottom);
    w.write_i32(a.pad_left);
    w.write_i32(a.pad_right);
    w.write_f32(a.epsilon);
    write_shape(w, a.reshape_to);

    w.write_u32(static_cast<std::uint32_t>(n.weights.size()));
    for (const Tensor& t : n.weights) serialize_tensor(w, t);

    write_shape(w, n.output_shape);
    w.write_u8(static_cast<std::uint8_t>(n.output_dtype));
    write_quant(w, n.output_quant);
  }
  w.write_u32(static_cast<std::uint32_t>(model.outputs.size()));
  for (int out : model.outputs) w.write_i32(out);
  return w.bytes();
}

Graph deserialize_model(BinaryReader& r) {
  MLX_CHECK_EQ(r.read_u32(), kMagic) << "not an mlexray model file";
  MLX_CHECK_EQ(r.read_u32(), kVersion) << "unsupported model version";
  Graph model;
  model.name = r.read_string();

  InputSpec& spec = model.input_spec;
  spec.height = r.read_i32();
  spec.width = r.read_i32();
  spec.channels = r.read_i32();
  spec.channel_order = static_cast<ChannelOrder>(r.read_u8());
  spec.resize = static_cast<ResizeMethod>(r.read_u8());
  spec.range_lo = r.read_f32();
  spec.range_hi = r.read_f32();
  spec.spectrogram_log_scale = r.read_u8() != 0;

  std::uint32_t node_count = r.read_u32();
  model.nodes.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    Node n;
    n.id = static_cast<int>(i);
    n.type = static_cast<OpType>(r.read_u8());
    n.name = r.read_string();
    std::uint32_t input_count = r.read_u32();
    for (std::uint32_t k = 0; k < input_count; ++k) {
      n.inputs.push_back(r.read_i32());
    }
    OpAttrs& a = n.attrs;
    a.stride_h = r.read_i32();
    a.stride_w = r.read_i32();
    a.padding = static_cast<Padding>(r.read_u8());
    a.filter_h = r.read_i32();
    a.filter_w = r.read_i32();
    a.activation = static_cast<Activation>(r.read_u8());
    a.pad_top = r.read_i32();
    a.pad_bottom = r.read_i32();
    a.pad_left = r.read_i32();
    a.pad_right = r.read_i32();
    a.epsilon = r.read_f32();
    a.reshape_to = read_shape(r);

    std::uint32_t weight_count = r.read_u32();
    for (std::uint32_t k = 0; k < weight_count; ++k) {
      n.weights.push_back(deserialize_tensor(r));
    }
    n.output_shape = read_shape(r);
    n.output_dtype = static_cast<DType>(r.read_u8());
    n.output_quant = read_quant(r);
    model.nodes.push_back(std::move(n));
  }
  std::uint32_t output_count = r.read_u32();
  for (std::uint32_t i = 0; i < output_count; ++i) {
    model.outputs.push_back(r.read_i32());
  }
  model.validate();
  return model;
}

void save_model(const Graph& model, const std::filesystem::path& path) {
  write_file(path, serialize_model(model));
}

Graph load_model(const std::filesystem::path& path) {
  BinaryReader reader(read_file(path));
  return deserialize_model(reader);
}

}  // namespace mlexray
