#include "src/graph/graph.h"

#include <algorithm>

namespace mlexray {

namespace {

std::int64_t conv_out_dim(std::int64_t in, int filter, int stride,
                          Padding padding) {
  if (padding == Padding::kSame) {
    return (in + stride - 1) / stride;
  }
  MLX_CHECK_GE(in - filter + 1, 1) << "VALID conv output would be empty";
  return (in - filter + stride) / stride;
}

const Node& input_node(const Graph& model, const Node& node, int i) {
  MLX_CHECK_LT(static_cast<std::size_t>(i), node.inputs.size())
      << op_type_name(node.type) << " '" << node.name << "' missing input " << i;
  return model.node(node.inputs[static_cast<std::size_t>(i)]);
}

void expect_inputs(const Node& node, std::size_t n) {
  MLX_CHECK_EQ(node.inputs.size(), n)
      << op_type_name(node.type) << " '" << node.name << "'";
}

void expect_weights(const Node& node, std::size_t n) {
  MLX_CHECK_EQ(node.weights.size(), n)
      << op_type_name(node.type) << " '" << node.name << "'";
}

}  // namespace

void infer_node_output(const Graph& model, Node& node) {
  switch (node.type) {
    case OpType::kInput: {
      MLX_CHECK(node.output_shape.rank() > 0)
          << "input node '" << node.name << "' needs an explicit shape";
      break;
    }
    case OpType::kConv2D: {
      expect_inputs(node, 1);
      expect_weights(node, 2);
      const Node& in = input_node(model, node, 0);
      const Shape& is = in.output_shape;
      const Shape& fs = node.weights[0].shape();  // OHWI
      MLX_CHECK_EQ(is.rank(), 4);
      MLX_CHECK_EQ(fs.rank(), 4);
      MLX_CHECK_EQ(fs.dim(3), is.dim(3))
          << "conv '" << node.name << "' filter in-channels";
      node.output_shape =
          Shape{is.dim(0),
                conv_out_dim(is.dim(1), static_cast<int>(fs.dim(1)),
                             node.attrs.stride_h, node.attrs.padding),
                conv_out_dim(is.dim(2), static_cast<int>(fs.dim(2)),
                             node.attrs.stride_w, node.attrs.padding),
                fs.dim(0)};
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kDepthwiseConv2D: {
      expect_inputs(node, 1);
      expect_weights(node, 2);
      const Node& in = input_node(model, node, 0);
      const Shape& is = in.output_shape;
      // [1, kh, kw, ch * depth_multiplier]: the trailing filter axis is the
      // output channel count; each input channel fans out to
      // depth_multiplier consecutive outputs (TFLite semantics).
      const Shape& fs = node.weights[0].shape();
      MLX_CHECK_EQ(is.rank(), 4);
      MLX_CHECK(fs.dim(3) % is.dim(3) == 0)
          << "depthwise '" << node.name << "' filter channels (" << fs.dim(3)
          << ") must be a multiple of input channels (" << is.dim(3) << ")";
      node.output_shape =
          Shape{is.dim(0),
                conv_out_dim(is.dim(1), static_cast<int>(fs.dim(1)),
                             node.attrs.stride_h, node.attrs.padding),
                conv_out_dim(is.dim(2), static_cast<int>(fs.dim(2)),
                             node.attrs.stride_w, node.attrs.padding),
                fs.dim(3)};
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kFullyConnected: {
      expect_inputs(node, 1);
      expect_weights(node, 2);
      const Node& in = input_node(model, node, 0);
      const Shape& ws = node.weights[0].shape();  // [out, in]
      std::int64_t flat = 1;
      for (int d = 1; d < in.output_shape.rank(); ++d) {
        flat *= in.output_shape.dim(d);
      }
      MLX_CHECK_EQ(ws.dim(1), flat)
          << "fc '" << node.name << "' input size mismatch";
      node.output_shape = Shape{in.output_shape.dim(0), ws.dim(0)};
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kAvgPool2D:
    case OpType::kMaxPool2D: {
      expect_inputs(node, 1);
      const Node& in = input_node(model, node, 0);
      const Shape& is = in.output_shape;
      MLX_CHECK_EQ(is.rank(), 4);
      MLX_CHECK_GT(node.attrs.filter_h, 0);
      MLX_CHECK_GT(node.attrs.filter_w, 0);
      node.output_shape =
          Shape{is.dim(0),
                conv_out_dim(is.dim(1), node.attrs.filter_h,
                             node.attrs.stride_h, node.attrs.padding),
                conv_out_dim(is.dim(2), node.attrs.filter_w,
                             node.attrs.stride_w, node.attrs.padding),
                is.dim(3)};
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kMean: {
      expect_inputs(node, 1);
      const Node& in = input_node(model, node, 0);
      const Shape& is = in.output_shape;
      MLX_CHECK_EQ(is.rank(), 4);
      node.output_shape = Shape{is.dim(0), 1, 1, is.dim(3)};
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kPad: {
      expect_inputs(node, 1);
      const Node& in = input_node(model, node, 0);
      const Shape& is = in.output_shape;
      MLX_CHECK_EQ(is.rank(), 4);
      node.output_shape =
          Shape{is.dim(0), is.dim(1) + node.attrs.pad_top + node.attrs.pad_bottom,
                is.dim(2) + node.attrs.pad_left + node.attrs.pad_right,
                is.dim(3)};
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kAdd:
    case OpType::kSub: {
      expect_inputs(node, 2);
      const Node& a = input_node(model, node, 0);
      const Node& b = input_node(model, node, 1);
      // Same shapes, or b = [N,1,1,C] broadcasting over a = [N,H,W,C]
      // (mirrors kMul's squeeze-excite broadcast).
      const bool same = a.output_shape == b.output_shape;
      const bool bcast = a.output_shape.rank() == 4 &&
                         b.output_shape.rank() == 4 &&
                         b.output_shape.dim(0) == a.output_shape.dim(0) &&
                         b.output_shape.dim(1) == 1 &&
                         b.output_shape.dim(2) == 1 &&
                         b.output_shape.dim(3) == a.output_shape.dim(3);
      MLX_CHECK(same || bcast)
          << op_type_name(node.type) << " '" << node.name
          << "' shape mismatch " << a.output_shape.to_string() << " vs "
          << b.output_shape.to_string();
      node.output_shape = a.output_shape;
      node.output_dtype = a.output_dtype;
      break;
    }
    case OpType::kMul: {
      expect_inputs(node, 2);
      const Node& a = input_node(model, node, 0);
      const Node& b = input_node(model, node, 1);
      // b may be [N,1,1,C] broadcasting over a=[N,H,W,C] (squeeze-excite).
      MLX_CHECK_EQ(a.output_shape.rank(), 4);
      MLX_CHECK_EQ(b.output_shape.rank(), 4);
      MLX_CHECK_EQ(a.output_shape.dim(3), b.output_shape.dim(3));
      node.output_shape = a.output_shape;
      node.output_dtype = a.output_dtype;
      break;
    }
    case OpType::kConcat: {
      MLX_CHECK_GE(node.inputs.size(), 2u);
      const Node& first = input_node(model, node, 0);
      Shape out = first.output_shape;
      std::int64_t channels = out.dim(out.rank() - 1);
      for (std::size_t i = 1; i < node.inputs.size(); ++i) {
        const Node& in = input_node(model, node, static_cast<int>(i));
        MLX_CHECK_EQ(in.output_shape.rank(), out.rank());
        for (int d = 0; d < out.rank() - 1; ++d) {
          MLX_CHECK_EQ(in.output_shape.dim(d), out.dim(d))
              << "concat '" << node.name << "' non-channel dim mismatch";
        }
        channels += in.output_shape.dim(out.rank() - 1);
      }
      out.set_dim(out.rank() - 1, channels);
      node.output_shape = out;
      node.output_dtype = first.output_dtype;
      break;
    }
    case OpType::kRelu:
    case OpType::kRelu6:
    case OpType::kHardSwish:
    case OpType::kSigmoid:
    case OpType::kTanh:
    case OpType::kSoftmax: {
      expect_inputs(node, 1);
      const Node& in = input_node(model, node, 0);
      node.output_shape = in.output_shape;
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kReshape: {
      expect_inputs(node, 1);
      const Node& in = input_node(model, node, 0);
      Shape target = node.attrs.reshape_to;
      MLX_CHECK_GT(target.rank(), 0) << "reshape '" << node.name << "'";
      std::int64_t known = 1;
      int infer_at = -1;
      for (int d = 0; d < target.rank(); ++d) {
        if (target.dim(d) == 0) target.set_dim(d, in.output_shape.dim(0));
        if (target.dim(d) == -1) {
          MLX_CHECK_EQ(infer_at, -1) << "multiple -1 dims";
          infer_at = d;
        } else {
          known *= target.dim(d);
        }
      }
      if (infer_at >= 0) {
        target.set_dim(infer_at, in.output_shape.num_elements() / known);
      }
      MLX_CHECK_EQ(target.num_elements(), in.output_shape.num_elements())
          << "reshape '" << node.name << "' element count";
      node.output_shape = target;
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kBatchNorm: {
      expect_inputs(node, 1);
      expect_weights(node, 4);
      const Node& in = input_node(model, node, 0);
      node.output_shape = in.output_shape;
      node.output_dtype = in.output_dtype;
      break;
    }
    case OpType::kQuantize: {
      expect_inputs(node, 1);
      const Node& in = input_node(model, node, 0);
      node.output_shape = in.output_shape;
      node.output_dtype = DType::kI8;
      break;
    }
    case OpType::kDequantize: {
      expect_inputs(node, 1);
      const Node& in = input_node(model, node, 0);
      node.output_shape = in.output_shape;
      node.output_dtype = DType::kF32;
      break;
    }
    case OpType::kEmbedding: {
      expect_inputs(node, 1);
      expect_weights(node, 1);
      const Node& in = input_node(model, node, 0);
      MLX_CHECK_EQ(in.output_shape.rank(), 2);  // [N, L] token ids
      const Shape& ws = node.weights[0].shape();
      node.output_shape =
          Shape{in.output_shape.dim(0), in.output_shape.dim(1), 1, ws.dim(1)};
      node.output_dtype = DType::kF32;
      break;
    }
    case OpType::kUpsampleNearest2x: {
      expect_inputs(node, 1);
      const Node& in = input_node(model, node, 0);
      const Shape& is = in.output_shape;
      MLX_CHECK_EQ(is.rank(), 4);
      node.output_shape = Shape{is.dim(0), is.dim(1) * 2, is.dim(2) * 2, is.dim(3)};
      node.output_dtype = in.output_dtype;
      break;
    }
  }
}

int Graph::add_node(Node node) {
  node.id = static_cast<int>(nodes.size());
  for (int input : node.inputs) {
    MLX_CHECK(input >= 0 && input < node.id)
        << "node '" << node.name << "' references non-topological input "
        << input;
  }
  nodes.push_back(std::move(node));
  infer_node_output(*this, nodes.back());
  return nodes.back().id;
}

std::vector<int> Graph::input_ids() const {
  std::vector<int> ids;
  for (const Node& n : nodes) {
    if (n.type == OpType::kInput) ids.push_back(n.id);
  }
  return ids;
}

void Graph::infer_shapes() {
  for (Node& n : nodes) infer_node_output(*this, n);
}

std::int64_t Graph::num_params() const {
  std::int64_t count = 0;
  for (const Node& n : nodes) {
    for (const Tensor& w : n.weights) count += w.num_elements();
  }
  return count;
}

int Graph::layer_count() const {
  int count = 0;
  for (const Node& n : nodes) {
    if (n.type != OpType::kInput) ++count;
  }
  return count;
}

void Graph::validate() const {
  MLX_CHECK(!nodes.empty()) << "empty model";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    MLX_CHECK_EQ(n.id, static_cast<int>(i)) << "node id out of order";
    for (int input : n.inputs) {
      MLX_CHECK(input >= 0 && input < n.id)
          << "node '" << n.name << "' has non-topological input";
    }
  }
  MLX_CHECK(!outputs.empty()) << "model '" << name << "' has no outputs";
  for (int out : outputs) {
    MLX_CHECK(out >= 0 && out < static_cast<int>(nodes.size()));
  }
}

}  // namespace mlexray
