// Graph input assumptions — the metadata that, per the paper, is routinely
// lost in the hand-off from the training team to the app team.
//
// Reference pipelines honour this spec exactly; the simulated "edge app"
// pipelines can be configured to violate it (PreprocBug), which is how the
// Fig-4 experiments inject realistic deployment bugs.
#pragma once

#include <cstdint>
#include <string>

namespace mlexray {

enum class ChannelOrder : std::uint8_t { kRGB = 0, kBGR = 1 };
enum class ResizeMethod : std::uint8_t { kAreaAverage = 0, kBilinear = 1 };

struct InputSpec {
  int height = 0;
  int width = 0;
  int channels = 0;
  ChannelOrder channel_order = ChannelOrder::kRGB;
  ResizeMethod resize = ResizeMethod::kAreaAverage;
  // Numerical range the model expects after normalization of u8 [0,255].
  float range_lo = -1.0f;
  float range_hi = 1.0f;
  // Audio models: whether the spectrogram is log-compressed.
  bool spectrogram_log_scale = true;

  bool operator==(const InputSpec&) const = default;
};

inline std::string channel_order_name(ChannelOrder order) {
  return order == ChannelOrder::kRGB ? "RGB" : "BGR";
}

inline std::string resize_method_name(ResizeMethod method) {
  return method == ResizeMethod::kAreaAverage ? "area-average" : "bilinear";
}

}  // namespace mlexray
