// A graph node: one operation, its constant weights and attributes.
#pragma once

#include <string>
#include <vector>

#include "src/graph/op_types.h"
#include "src/tensor/tensor.h"

namespace mlexray {

struct OpAttrs {
  // Convolutions / pools.
  int stride_h = 1;
  int stride_w = 1;
  Padding padding = Padding::kSame;
  int filter_h = 0;  // pooling window (pools only; convs read weight shape)
  int filter_w = 0;
  Activation activation = Activation::kNone;
  // Pad op amounts.
  int pad_top = 0, pad_bottom = 0, pad_left = 0, pad_right = 0;
  // BatchNorm.
  float epsilon = 1e-5f;
  // Reshape target (dim -1 infers; dim 0 copies the input batch).
  Shape reshape_to;

  bool operator==(const OpAttrs&) const = default;
};

// Weight tensor layout conventions per op:
//   Conv2D:          weights[0] filter OHWI [out, kh, kw, in], weights[1] bias [out]
//   DepthwiseConv2D: weights[0] filter [1, kh, kw, ch],        weights[1] bias [ch]
//   FullyConnected:  weights[0] [out, in],                     weights[1] bias [out]
//   BatchNorm:       weights = {gamma, beta, moving_mean, moving_var}, each [ch]
//   Embedding:       weights[0] [vocab, emb_dim]
struct Node {
  int id = -1;
  OpType type = OpType::kInput;
  std::string name;
  std::vector<int> inputs;      // ids of producer nodes, in op input order
  std::vector<Tensor> weights;  // constant tensors owned by the node
  OpAttrs attrs;

  // Filled by shape/type inference.
  Shape output_shape;
  DType output_dtype = DType::kF32;
  // Output quantization (set by the quantizer for integer graphs).
  QuantParams output_quant;
};

}  // namespace mlexray
