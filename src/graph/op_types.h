// Operation catalogue for the inference/training graph IR.
//
// The set mirrors what the paper's evaluation models need: MobileNet V1-V3
// (conv, depthwise conv, squeeze-excite avg-pool + mul, hard-swish),
// ResNet/Inception/DenseNet (add, concat, pools), detection heads, speech
// conv nets, and embedding-based text models. BatchNorm exists only in
// training graphs and is folded away by the converter.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/error.h"

namespace mlexray {

enum class OpType : std::uint8_t {
  kInput = 0,
  kConv2D,
  kDepthwiseConv2D,
  kFullyConnected,
  kAvgPool2D,
  kMaxPool2D,
  kMean,        // global spatial mean, keepdims (TFLite "Mean")
  kPad,         // spatial zero padding
  kAdd,         // elementwise add (residual)
  kMul,         // elementwise mul with [N,1,1,C] broadcast (squeeze-excite)
  kConcat,      // channel-axis concatenation
  kRelu,
  kRelu6,
  kHardSwish,
  kSigmoid,
  kSoftmax,
  kReshape,
  kBatchNorm,   // training-only; folded by the converter
  kQuantize,    // f32 -> i8 at quantized-graph entry
  kDequantize,  // i8 -> f32 at quantized-graph exit
  kEmbedding,   // token ids -> embedding vectors
  kUpsampleNearest2x,
  // Appended post-serialization-freeze (OpType round-trips as a raw u8, so
  // appending keeps old model files loadable).
  kSub,         // elementwise subtract (same broadcast rules as add)
  kTanh,
};

// Activation functions fusable into conv/depthwise/fc/add.
enum class Activation : std::uint8_t {
  kNone = 0,
  kRelu,
  kRelu6,
  kHardSwish,
};

enum class Padding : std::uint8_t { kSame = 0, kValid = 1 };

std::string op_type_name(OpType type);
std::string activation_name(Activation activation);

// Layer-type grouping used by the Table-4 bench ("D-Conv", "Conv", "FC", ...).
std::string op_latency_group(OpType type);

}  // namespace mlexray
