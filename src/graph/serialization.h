// Graph serialization.
//
// One binary format serves both of the paper's on-disk artifacts:
//   .ckpt — training checkpoint (graph with BatchNorm, float weights)
//   .efb  — "edge flat binary", the converted/quantized deployment model
// The format is identical; the extension documents which pipeline stage
// produced the file (mirroring TF checkpoint vs TFLite FlatBuffer).
#pragma once

#include <filesystem>

#include "src/common/file_io.h"
#include "src/graph/graph.h"

namespace mlexray {

void serialize_tensor(BinaryWriter& writer, const Tensor& tensor);
Tensor deserialize_tensor(BinaryReader& reader);

std::vector<std::uint8_t> serialize_model(const Graph& model);
Graph deserialize_model(BinaryReader& reader);

void save_model(const Graph& model, const std::filesystem::path& path);
Graph load_model(const std::filesystem::path& path);

}  // namespace mlexray
