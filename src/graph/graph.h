// Graph IR: a topologically ordered op list with shape inference.
//
// One Graph instance represents one of the paper's "model versions": the
// training checkpoint (with BatchNorm), the converted float inference model,
// or the fully quantized int8 model. The converter and quantizer transform
// between these versions.
#pragma once

#include <string>
#include <vector>

#include "src/graph/input_spec.h"
#include "src/graph/node.h"

namespace mlexray {

class Graph {
 public:
  std::string name;
  InputSpec input_spec;
  std::vector<Node> nodes;   // topological order; node id == index
  std::vector<int> outputs;  // ids of output nodes

  // Appends a node, assigning its id; inputs must reference earlier nodes.
  int add_node(Node node);

  const Node& node(int id) const {
    MLX_CHECK(id >= 0 && id < static_cast<int>(nodes.size()));
    return nodes[static_cast<std::size_t>(id)];
  }
  Node& node(int id) {
    MLX_CHECK(id >= 0 && id < static_cast<int>(nodes.size()));
    return nodes[static_cast<std::size_t>(id)];
  }

  // Ids of kInput nodes, in insertion order.
  std::vector<int> input_ids() const;

  // Runs shape/type inference over all nodes. Throws on malformed graphs.
  void infer_shapes();

  // Number of trainable/constant parameters across all nodes.
  std::int64_t num_params() const;

  // Count of non-input nodes (the paper's "layer #").
  int layer_count() const;

  // Structural + invariant checks (topological inputs, weight arity).
  void validate() const;
};

// Infers the output shape/dtype of one node given its input nodes' results.
// Exposed for the converter and quantizer which rewrite graphs.
void infer_node_output(const Graph& model, Node& node);

}  // namespace mlexray
