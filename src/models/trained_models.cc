#include "src/models/trained_models.h"

#include <cstdio>
#include <filesystem>

#include "src/graph/serialization.h"

namespace mlexray {

std::vector<LabeledExample> imagenet_examples(
    const std::vector<SensorExample>& sensors,
    const ImagePipelineConfig& pipeline) {
  std::vector<LabeledExample> out;
  out.reserve(sensors.size());
  for (const SensorExample& s : sensors) {
    out.push_back({run_image_pipeline(s.image_u8, pipeline), s.label});
  }
  return out;
}

std::vector<LabeledExample> speech_examples(
    const std::vector<SpeechExample>& waves,
    const AudioPipelineConfig& pipeline) {
  std::vector<LabeledExample> out;
  out.reserve(waves.size());
  for (const SpeechExample& s : waves) {
    out.push_back({run_audio_pipeline(s.wave, pipeline), s.label});
  }
  return out;
}

const Vocabulary& imdb_vocabulary() {
  static const Vocabulary kVocab =
      Vocabulary::build(SynthImdb::corpus_words(), 64);
  return kVocab;
}

std::vector<LabeledExample> imdb_examples(
    const std::vector<TextExample>& texts,
    const TextPipelineConfig& pipeline) {
  std::vector<LabeledExample> out;
  out.reserve(texts.size());
  for (const TextExample& t : texts) {
    out.push_back({encode_text(t.text, imdb_vocabulary(), pipeline), t.label});
  }
  return out;
}

namespace {

Graph train_or_load(const std::string& cache_key,
                    const std::function<Graph()>& train_fn) {
  const std::filesystem::path path = cache_dir() / (cache_key + ".ckpt");
  if (std::filesystem::exists(path)) {
    return load_model(path);
  }
  std::printf("[mlexray] training %s (cached afterwards at %s)\n",
              cache_key.c_str(), path.string().c_str());
  std::fflush(stdout);
  Graph model = train_fn();
  save_model(model, path);
  return model;
}

}  // namespace

namespace {

// Standard augmentation (brightness/contrast jitter) applied to training
// images only — mirrors common training pipelines and keeps the
// normalization-bug damage below the rotation-bug damage, as in Fig 4a.
// (Rotation augmentation is deliberately absent: the orientation classes
// are the rotation experiment's signal.)
void augment_brightness_contrast(std::vector<LabeledExample>* examples,
                                 std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<LabeledExample> extra;
  extra.reserve(examples->size());
  for (const LabeledExample& ex : *examples) {
    LabeledExample jittered;
    jittered.label = ex.label;
    jittered.input = ex.input;
    float scale = rng.uniform(0.75f, 1.25f);
    float shift = rng.uniform(-0.25f, 0.25f);
    float* p = jittered.input.data<float>();
    for (std::int64_t i = 0; i < jittered.input.num_elements(); ++i) {
      p[i] = p[i] * scale + shift;
    }
    extra.push_back(std::move(jittered));
  }
  for (LabeledExample& ex : extra) examples->push_back(std::move(ex));
}

// Builds a batch-N training twin of a zoo architecture, trains it, and
// copies the fitted weights (incl. BN statistics) into the batch-1
// deployment graph.
Graph train_twin_and_transfer(
    const std::function<ZooModel(int batch)>& build,
    const std::vector<LabeledExample>& train_set, FitConfig cfg) {
  ZooModel train_twin = build(cfg.batch_size);
  fit_classifier(&train_twin.model, train_twin.logits_id, train_set, cfg);
  ZooModel deploy = build(/*batch=*/1);
  copy_weights(train_twin.model, &deploy.model);
  return deploy.model;
}

}  // namespace

Graph trained_image_checkpoint(const std::string& zoo_name) {
  return train_or_load("v1_" + zoo_name, [&] {
    auto sensors = SynthImageNet::make(StandardData::kImageTrainPerClass,
                                       StandardData::kImageTrainSeed);
    FitConfig cfg;
    // Depthwise MobileNets need more epochs; the wider conv nets
    // (ResNet/Inception/DenseNet) converge in roughly half as many.
    cfg.epochs = zoo_name.find("mobilenet") != std::string::npos ? 30 : 14;
    cfg.batch_size = 16;
    cfg.train.learning_rate = 4e-3f;
    cfg.train.num_threads = 2;

    std::function<ZooModel(int)> build;
    if (zoo_name == "mobilenet_v1_mini") {
      build = [](int b) { return build_mobilenet_v1_mini(7, b); };
    } else if (zoo_name == "mobilenet_v2_mini") {
      build = [](int b) { return build_mobilenet_v2_mini(7, b); };
    } else if (zoo_name == "mobilenet_v3_mini") {
      build = [](int b) { return build_mobilenet_v3_mini(7, b); };
    } else if (zoo_name == "resnet50v2_mini") {
      build = [](int b) { return build_resnet50v2_mini(7, b); };
    } else if (zoo_name == "inception_mini") {
      build = [](int b) { return build_inception_mini(7, b); };
    } else if (zoo_name == "densenet121_mini") {
      build = [](int b) { return build_densenet121_mini(7, b); };
    } else {
      MLX_FAIL() << "unknown zoo model '" << zoo_name << "'";
    }
    ImagePipelineConfig correct{build(1).model.input_spec, PreprocBug::kNone};
    auto train_set = imagenet_examples(sensors, correct);
    augment_brightness_contrast(&train_set, /*seed=*/909);
    return train_twin_and_transfer(build, train_set, cfg);
  });
}

Graph trained_kws_checkpoint(const std::string& name) {
  return train_or_load("v1_" + name, [&] {
    std::function<ZooModel(int)> build = [&](int b) {
      return name == "kws_tiny_conv" ? build_kws_tiny_conv(11, b)
                                     : build_kws_low_latency_conv(11, b);
    };
    auto waves = SynthSpeech::make(StandardData::kSpeechTrainPerClass, 3001);
    AudioPipelineConfig correct;  // defaults = training assumptions (log)
    auto train_set = speech_examples(waves, correct);
    FitConfig cfg;
    cfg.epochs = 35;
    cfg.batch_size = 16;
    cfg.train.learning_rate = 4e-3f;
    cfg.train.num_threads = 2;
    return train_twin_and_transfer(build, train_set, cfg);
  });
}

Graph trained_nnlm_checkpoint() {
  return train_or_load("v1_nnlm_mini", [&] {
    std::function<ZooModel(int)> build = [](int b) {
      return build_nnlm_mini(13, static_cast<int>(imdb_vocabulary().size()),
                             StandardData::kTextMaxLen, b);
    };
    auto texts = SynthImdb::make(StandardData::kTextTrain, 4001);
    TextPipelineConfig pipeline;
    pipeline.max_len = StandardData::kTextMaxLen;
    auto train_set = imdb_examples(texts, pipeline);
    FitConfig cfg;
    cfg.epochs = 15;
    cfg.batch_size = 16;
    cfg.train.learning_rate = 5e-3f;
    return train_twin_and_transfer(build, train_set, cfg);
  });
}

SsdModel trained_ssd(const std::string& backbone) {
  SsdModel deploy = build_ssd_mini(backbone, /*seed=*/21);
  deploy.model = train_or_load("v1_ssd_" + backbone, [&] {
    SsdModel twin = build_ssd_mini(backbone, /*seed=*/21, /*batch=*/8);
    auto scenes = SynthCoco::make(StandardData::kDetTrain, 5001);
    train_ssd(&twin, scenes, /*epochs=*/14, /*seed=*/5002);
    SsdModel fresh = build_ssd_mini(backbone, /*seed=*/21);
    copy_weights(twin.model, &fresh.model);
    return fresh.model;
  });
  return deploy;
}

ZooModel trained_deeplab() {
  ZooModel deploy = build_deeplab_mini(/*seed=*/31);
  deploy.model = train_or_load("v1_deeplab_mini", [&] {
    ZooModel twin = build_deeplab_mini(/*seed=*/31, /*batch=*/8);
    auto scenes = SynthSeg::make(StandardData::kSegTrain, 6001);
    train_deeplab(&twin, scenes, /*epochs=*/12, /*seed=*/6002);
    ZooModel fresh = build_deeplab_mini(/*seed=*/31);
    copy_weights(twin.model, &fresh.model);
    return fresh.model;
  });
  return deploy;
}

Graph trained_mobilebert_checkpoint() {
  return train_or_load("v1_mobilebert_mini", [&] {
    std::function<ZooModel(int)> build = [](int b) {
      return build_mobilebert_mini(17,
                                   static_cast<int>(imdb_vocabulary().size()),
                                   StandardData::kTextMaxLen, b);
    };
    auto texts = SynthImdb::make(StandardData::kTextTrain, 4001);
    TextPipelineConfig pipeline;
    pipeline.max_len = StandardData::kTextMaxLen;
    auto train_set = imdb_examples(texts, pipeline);
    FitConfig cfg;
    cfg.epochs = 15;
    cfg.batch_size = 16;
    cfg.train.learning_rate = 5e-3f;
    return train_twin_and_transfer(build, train_set, cfg);
  });
}

}  // namespace mlexray
