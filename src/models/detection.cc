#include "src/models/detection.h"

#include <cmath>
#include <numeric>

#include "src/train/trainer.h"

namespace mlexray {

namespace {

InputSpec det_spec() {
  InputSpec spec;
  spec.height = 32;
  spec.width = 32;
  spec.channels = 3;
  spec.channel_order = ChannelOrder::kRGB;
  spec.resize = ResizeMethod::kAreaAverage;
  spec.range_lo = -1.0f;
  spec.range_hi = 1.0f;
  return spec;
}

int conv_bn_relu(GraphBuilder& b, int in, int ch, int k, int stride,
                 const std::string& prefix) {
  int x = b.conv2d(in, ch, k, k, stride, Padding::kSame, Activation::kNone,
                   prefix + "_conv");
  x = b.batch_norm(x, prefix + "_bn");
  return b.relu(x, prefix + "_relu");
}

}  // namespace

SsdModel build_ssd_mini(const std::string& backbone, std::uint64_t seed,
                        int batch) {
  Pcg32 rng(seed);
  SsdModel ssd;
  GraphBuilder b("ssd_" + backbone + "_mini", &rng);
  int x = b.input(Shape{batch, 32, 32, 3});
  int feat8 = -1;
  if (backbone == "mobilenet") {
    x = conv_bn_relu(b, x, 16, 3, 2, "stem");                 // 16x16
    x = b.depthwise_conv2d(x, 3, 3, 2, Padding::kSame,
                           Activation::kNone, "b1_dw");       // 8x8
    x = b.batch_norm(x, "b1_dw_bn");
    x = b.relu(x, "b1_dw_relu");
    x = conv_bn_relu(b, x, 32, 1, 1, "b1_pw");
    x = b.depthwise_conv2d(x, 3, 3, 1, Padding::kSame,
                           Activation::kNone, "b2_dw");
    x = b.batch_norm(x, "b2_dw_bn");
    x = b.relu(x, "b2_dw_relu");
    feat8 = conv_bn_relu(b, x, 48, 1, 1, "b2_pw");            // 8x8 feature
  } else if (backbone == "resnet") {
    x = conv_bn_relu(b, x, 16, 3, 2, "stem");                 // 16x16
    int skip = conv_bn_relu(b, x, 32, 3, 2, "r1a");           // 8x8
    int f = conv_bn_relu(b, skip, 32, 3, 1, "r1b");
    x = b.add(skip, f, Activation::kNone, "r1_add");
    feat8 = conv_bn_relu(b, x, 48, 3, 1, "r2");               // 8x8 feature
  } else {
    MLX_FAIL() << "unknown ssd backbone '" << backbone << "'";
  }
  int feat4 = conv_bn_relu(b, feat8, 64, 3, 2, "down4");      // 4x4 feature

  const int head_ch = ssd.num_classes + 1;
  int cls8 = b.conv2d(feat8, head_ch, 3, 3, 1, Padding::kSame,
                      Activation::kNone, "cls8");
  int box8 = b.conv2d(feat8, 4, 3, 3, 1, Padding::kSame, Activation::kNone,
                      "box8");
  int cls4 = b.conv2d(feat4, head_ch, 3, 3, 1, Padding::kSame,
                      Activation::kNone, "cls4");
  int box4 = b.conv2d(feat4, 4, 3, 3, 1, Padding::kSame, Activation::kNone,
                      "box4");
  ssd.model = b.finish({cls8, box8, cls4, box4});
  ssd.model.input_spec = det_spec();
  return ssd;
}

std::vector<Anchor> ssd_anchors(const SsdModel& ssd) {
  std::vector<Anchor> anchors;
  for (std::size_t s = 0; s < ssd.grid_sizes.size(); ++s) {
    const int g = ssd.grid_sizes[s];
    const float size = ssd.anchor_sizes[s];
    for (int y = 0; y < g; ++y) {
      for (int x = 0; x < g; ++x) {
        anchors.push_back({(static_cast<float>(x) + 0.5f) / g,
                           (static_cast<float>(y) + 0.5f) / g, size});
      }
    }
  }
  return anchors;
}

SsdTargets encode_ssd_targets(const SsdModel& ssd,
                              const std::vector<DetObject>& objects,
                              float match_iou) {
  std::vector<Anchor> anchors = ssd_anchors(ssd);
  SsdTargets t;
  t.labels.assign(anchors.size(), 0);  // background
  t.positive.assign(anchors.size(), false);
  t.box_deltas.assign(anchors.size() * 4, 0.0f);
  for (const DetObject& obj : objects) {
    float best_iou = 0.0f;
    int best_anchor = -1;
    for (std::size_t a = 0; a < anchors.size(); ++a) {
      DetObject anchor_box{anchors[a].cx, anchors[a].cy, anchors[a].size,
                           anchors[a].size, obj.cls};
      float iou = box_iou(anchor_box, obj);
      if (iou > best_iou) {
        best_iou = iou;
        best_anchor = static_cast<int>(a);
      }
      if (iou >= match_iou) {
        t.labels[a] = obj.cls + 1;
        t.positive[a] = true;
        t.box_deltas[a * 4 + 0] = (obj.cx - anchors[a].cx) / anchors[a].size;
        t.box_deltas[a * 4 + 1] = (obj.cy - anchors[a].cy) / anchors[a].size;
        t.box_deltas[a * 4 + 2] = std::log(obj.w / anchors[a].size);
        t.box_deltas[a * 4 + 3] = std::log(obj.h / anchors[a].size);
      }
    }
    // Always claim the best anchor so every object has a positive.
    if (best_anchor >= 0) {
      const auto a = static_cast<std::size_t>(best_anchor);
      t.labels[a] = obj.cls + 1;
      t.positive[a] = true;
      t.box_deltas[a * 4 + 0] = (obj.cx - anchors[a].cx) / anchors[a].size;
      t.box_deltas[a * 4 + 1] = (obj.cy - anchors[a].cy) / anchors[a].size;
      t.box_deltas[a * 4 + 2] = std::log(obj.w / anchors[a].size);
      t.box_deltas[a * 4 + 3] = std::log(obj.h / anchors[a].size);
    }
  }
  return t;
}

void train_ssd(SsdModel* ssd, const std::vector<DetExample>& train_set,
               int epochs, std::uint64_t seed, bool verbose) {
  TrainConfig tc;
  tc.learning_rate = 2e-3f;
  tc.num_threads = 2;
  Trainer trainer(&ssd->model, tc);
  Pcg32 rng(seed);
  ImagePipelineConfig pipeline{ssd->model.input_spec, PreprocBug::kNone};

  const std::vector<int>& outs = ssd->model.outputs;  // cls8 box8 cls4 box4
  const int cells8 = ssd->grid_sizes[0] * ssd->grid_sizes[0];
  const int cells4 = ssd->grid_sizes[1] * ssd->grid_sizes[1];
  const auto batch = static_cast<std::size_t>(
      ssd->model.node(ssd->model.input_ids()[0]).output_shape.dim(0));

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    const std::size_t batches = (order.size() + batch - 1) / batch;
    for (std::size_t bi = 0; bi < batches; ++bi) {
      // Pack the batch input and per-anchor targets (batch-major rows).
      Tensor packed(DType::kF32, ssd->model.node(0).output_shape);
      auto* dst = static_cast<std::uint8_t*>(packed.raw_data());
      std::vector<SsdTargets> targets;
      for (std::size_t k = 0; k < batch; ++k) {
        const DetExample& ex = train_set[order[(bi * batch + k) % order.size()]];
        Tensor input = run_image_pipeline(ex.image_u8, pipeline);
        std::memcpy(dst + k * input.byte_size(), input.raw_data(),
                    input.byte_size());
        targets.push_back(encode_ssd_targets(*ssd, ex.objects));
      }
      // Hard-negative subsampling per image: all positives, ~3x negatives.
      for (SsdTargets& t : targets) {
        int positives = 0;
        for (bool p : t.positive) positives += p ? 1 : 0;
        int keep = std::max(4, positives * 3);
        for (std::size_t a = 0; a < t.labels.size(); ++a) {
          if (t.labels[a] != 0) continue;
          if (rng.next_below(static_cast<std::uint32_t>(t.labels.size())) <
              static_cast<std::uint32_t>(keep)) {
            --keep;
          } else {
            t.labels[a] = -1;  // ignored row
          }
        }
      }
      trainer.zero_grad();
      trainer.forward({packed});
      std::vector<std::pair<int, Tensor>> seeds;
      double loss = 0.0;
      int offset = 0;
      for (int scale = 0; scale < 2; ++scale) {
        const int cells = scale == 0 ? cells8 : cells4;
        const Tensor& cls_out =
            trainer.activation(outs[static_cast<std::size_t>(scale * 2)]);
        const Tensor& box_out =
            trainer.activation(outs[static_cast<std::size_t>(scale * 2 + 1)]);
        std::vector<int> labels;
        std::vector<bool> pos;
        Tensor box_target = Tensor::f32(box_out.shape());
        float* bt = box_target.data<float>();
        for (std::size_t k = 0; k < batch; ++k) {
          const SsdTargets& t = targets[k];
          labels.insert(labels.end(), t.labels.begin() + offset,
                        t.labels.begin() + offset + cells);
          pos.insert(pos.end(), t.positive.begin() + offset,
                     t.positive.begin() + offset + cells);
          std::memcpy(bt + (k * cells) * 4,
                      t.box_deltas.data() + static_cast<std::size_t>(offset) * 4,
                      static_cast<std::size_t>(cells) * 4 * sizeof(float));
        }
        LossGrad cls_lg = softmax_cross_entropy_rows(cls_out, labels);
        loss += cls_lg.loss;
        seeds.emplace_back(outs[static_cast<std::size_t>(scale * 2)],
                           std::move(cls_lg.grad));
        LossGrad box_lg = smooth_l1_rows(box_out, box_target, pos, 1.0);
        loss += box_lg.loss;
        seeds.emplace_back(outs[static_cast<std::size_t>(scale * 2 + 1)],
                           std::move(box_lg.grad));
        offset += cells;
      }
      trainer.backward(seeds);
      trainer.step();
      epoch_loss += loss;
    }
    if (verbose) {
      std::printf("  [ssd] %s epoch %d/%d loss %.4f\n",
                  ssd->model.name.c_str(), epoch + 1, epochs,
                  epoch_loss / static_cast<double>(batches));
      std::fflush(stdout);
    }
  }
}

std::vector<DetPrediction> ssd_predict(const SsdModel& ssd,
                                       Interpreter& interpreter,
                                       const Tensor& input) {
  interpreter.set_input(0, input);
  interpreter.invoke();
  std::vector<Anchor> anchors = ssd_anchors(ssd);
  std::vector<DetPrediction> raw;
  int offset = 0;
  for (int scale = 0; scale < 2; ++scale) {
    Tensor cls = interpreter.output(scale * 2).to_f32();
    Tensor box = interpreter.output(scale * 2 + 1).to_f32();
    const int cells = ssd.grid_sizes[static_cast<std::size_t>(scale)] *
                      ssd.grid_sizes[static_cast<std::size_t>(scale)];
    const int head_ch = ssd.num_classes + 1;
    const float* pc = cls.data<float>();
    const float* pb = box.data<float>();
    for (int cell = 0; cell < cells; ++cell) {
      const float* logits = pc + static_cast<std::int64_t>(cell) * head_ch;
      // Softmax over classes+background.
      float max_v = logits[0];
      for (int c = 1; c < head_ch; ++c) max_v = std::max(max_v, logits[c]);
      float sum = 0.0f;
      for (int c = 0; c < head_ch; ++c) sum += std::exp(logits[c] - max_v);
      int best = 0;
      for (int c = 1; c < head_ch; ++c) {
        if (logits[c] > logits[best]) best = c;
      }
      if (best == 0) continue;  // background
      const Anchor& a = anchors[static_cast<std::size_t>(offset + cell)];
      DetPrediction p;
      p.cls = best - 1;
      p.score = std::exp(logits[best] - max_v) / sum;
      p.cx = a.cx + pb[cell * 4 + 0] * a.size;
      p.cy = a.cy + pb[cell * 4 + 1] * a.size;
      p.w = a.size * std::exp(pb[cell * 4 + 2]);
      p.h = a.size * std::exp(pb[cell * 4 + 3]);
      raw.push_back(p);
    }
    offset += cells;
  }
  return non_max_suppression(std::move(raw));
}

double evaluate_ssd_map(const SsdModel& ssd, const Graph& deployed,
                        const OpResolver& resolver,
                        const std::vector<DetExample>& examples,
                        const ImagePipelineConfig& pipeline) {
  Interpreter interp(&deployed, &resolver);
  std::vector<std::vector<DetPrediction>> predictions;
  predictions.reserve(examples.size());
  for (const DetExample& ex : examples) {
    Tensor input = run_image_pipeline(ex.image_u8, pipeline);
    predictions.push_back(ssd_predict(ssd, interp, input));
  }
  return mean_average_precision(predictions, examples, ssd.num_classes);
}

}  // namespace mlexray
