#include "src/models/zoo.h"

namespace mlexray {

namespace {

constexpr int kClasses = 12;

InputSpec image_spec() {
  InputSpec spec;
  spec.height = 32;
  spec.width = 32;
  spec.channels = 3;
  spec.channel_order = ChannelOrder::kRGB;
  spec.resize = ResizeMethod::kAreaAverage;
  spec.range_lo = -1.0f;
  spec.range_hi = 1.0f;
  return spec;
}

int conv_bn_act(GraphBuilder& b, int in, int ch, int k, int stride,
                Activation act, const std::string& prefix) {
  int x = b.conv2d(in, ch, k, k, stride, Padding::kSame, Activation::kNone,
                   prefix + "_conv");
  x = b.batch_norm(x, prefix + "_bn");
  switch (act) {
    case Activation::kRelu: return b.relu(x, prefix + "_relu");
    case Activation::kRelu6: return b.relu6(x, prefix + "_relu6");
    case Activation::kHardSwish: return b.hardswish(x, prefix + "_hswish");
    case Activation::kNone: return x;
  }
  return x;
}

int dwconv_bn_act(GraphBuilder& b, int in, int stride, Activation act,
                  const std::string& prefix, bool explicit_pad = false) {
  int x = in;
  Padding pad = Padding::kSame;
  if (explicit_pad && stride == 2) {
    // TFLite-style explicit pad before stride-2 depthwise (gives the graph
    // its Pad layers, as in the paper's Table 4 layer inventory).
    x = b.pad(x, 0, 1, 0, 1, prefix + "_pad");
    pad = Padding::kValid;
  }
  x = b.depthwise_conv2d(x, 3, 3, stride, pad, Activation::kNone,
                         prefix + "_dwconv");
  x = b.batch_norm(x, prefix + "_bn");
  switch (act) {
    case Activation::kRelu: return b.relu(x, prefix + "_relu");
    case Activation::kRelu6: return b.relu6(x, prefix + "_relu6");
    case Activation::kHardSwish: return b.hardswish(x, prefix + "_hswish");
    case Activation::kNone: return x;
  }
  return x;
}

}  // namespace

ZooModel build_mobilenet_v1_mini(std::uint64_t seed, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("mobilenet_v1_mini", &rng);
  int x = b.input(Shape{batch, 32, 32, 3});
  x = conv_bn_act(b, x, 16, 3, 2, Activation::kRelu6, "stem");
  const int channels[5] = {24, 32, 32, 48, 64};
  const int strides[5] = {1, 2, 1, 2, 1};
  for (int i = 0; i < 5; ++i) {
    std::string p = "block" + std::to_string(i);
    x = dwconv_bn_act(b, x, strides[i], Activation::kRelu6, p + "_dw");
    x = conv_bn_act(b, x, channels[i], 1, 1, Activation::kRelu6, p + "_pw");
  }
  x = b.mean(x, "global_pool");
  int logits = b.fully_connected(x, kClasses, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  ZooModel zm{b.finish({prob}), logits};
  zm.model.input_spec = image_spec();
  return zm;
}

namespace {

// MobileNetV2 inverted residual. Returns the output node id.
int inverted_residual(GraphBuilder& b, int in, int out_ch, int expand,
                      int stride, Activation act, const std::string& prefix,
                      bool squeeze_excite, Pcg32& /*rng*/) {
  const std::int64_t in_ch = b.shape_of(in).dim(3);
  int x = in;
  if (expand > 1) {
    x = conv_bn_act(b, x, static_cast<int>(in_ch) * expand, 1, 1, act,
                    prefix + "_expand");
  }
  x = dwconv_bn_act(b, x, stride, act, prefix, /*explicit_pad=*/true);
  if (squeeze_excite) {
    // SE block: global AvgPool2D -> 1x1 conv reduce (relu) -> 1x1 conv
    // expand (sigmoid) -> channel-wise Mul. The AvgPool2D here is the layer
    // the paper's Fig 6 flags under the buggy reference kernel.
    const Shape& fs = b.shape_of(x);
    const std::int64_t se_ch = fs.dim(3);
    int pooled = b.avg_pool(x, static_cast<int>(fs.dim(1)), 1, Padding::kValid,
                            prefix + "_se_pool");
    int squeeze = b.conv2d(pooled, static_cast<int>(se_ch) / 4, 1, 1, 1,
                           Padding::kSame, Activation::kNone,
                           prefix + "_se_reduce");
    squeeze = b.relu(squeeze, prefix + "_se_relu");
    int excite = b.conv2d(squeeze, static_cast<int>(se_ch), 1, 1, 1,
                          Padding::kSame, Activation::kNone,
                          prefix + "_se_expand");
    excite = b.sigmoid(excite, prefix + "_se_gate");
    x = b.mul(x, excite, prefix + "_se_scale");
  }
  x = b.conv2d(x, out_ch, 1, 1, 1, Padding::kSame, Activation::kNone,
               prefix + "_project");
  x = b.batch_norm(x, prefix + "_project_bn");
  if (stride == 1 && in_ch == out_ch) {
    x = b.add(in, x, Activation::kNone, prefix + "_residual");
  }
  return x;
}

ZooModel build_mobilenet_v2_like(const std::string& name, std::uint64_t seed,
                                 bool v3, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b(name, &rng);
  const Activation act = v3 ? Activation::kHardSwish : Activation::kRelu6;
  int x = b.input(Shape{batch, 32, 32, 3});
  x = conv_bn_act(b, x, 16, 3, 2, act, "stem");
  struct BlockCfg {
    int out_ch, expand, stride;
  };
  const BlockCfg blocks[6] = {{16, 2, 1}, {24, 3, 2}, {24, 3, 1},
                              {32, 3, 2}, {32, 3, 1}, {48, 3, 1}};
  for (int i = 0; i < 6; ++i) {
    x = inverted_residual(b, x, blocks[i].out_ch, blocks[i].expand,
                          blocks[i].stride, act,
                          "block" + std::to_string(i), /*squeeze_excite=*/v3,
                          rng);
  }
  x = conv_bn_act(b, x, 64, 1, 1, act, "head");
  if (v3) {
    // Real MobileNetV3 pools with AvgPool2D (not Mean) — which is why the
    // buggy reference AvgPool kernel also corrupts the V3 head (§4.4).
    const Shape& fs = b.shape_of(x);
    x = b.avg_pool(x, static_cast<int>(fs.dim(1)), 1, Padding::kValid,
                   "global_pool");
  } else {
    x = b.mean(x, "global_pool");
  }
  int logits = b.fully_connected(x, kClasses, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  ZooModel zm{b.finish({prob}), logits};
  zm.model.input_spec = image_spec();
  return zm;
}

}  // namespace

ZooModel build_mobilenet_v2_mini(std::uint64_t seed, int batch) {
  return build_mobilenet_v2_like("mobilenet_v2_mini", seed, /*v3=*/false, batch);
}

ZooModel build_mobilenet_v3_mini(std::uint64_t seed, int batch) {
  return build_mobilenet_v2_like("mobilenet_v3_mini", seed, /*v3=*/true, batch);
}

ZooModel build_resnet50v2_mini(std::uint64_t seed, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("resnet50v2_mini", &rng);
  int x = b.input(Shape{batch, 32, 32, 3});
  x = b.conv2d(x, 24, 3, 3, 1, Padding::kSame, Activation::kNone, "stem_conv");
  const int stage_ch[3] = {24, 40, 64};
  const int stage_stride[3] = {1, 2, 2};
  for (int s = 0; s < 3; ++s) {
    for (int blk = 0; blk < 2; ++blk) {
      std::string p = "s" + std::to_string(s) + "b" + std::to_string(blk);
      const int stride = blk == 0 ? stage_stride[s] : 1;
      const std::int64_t in_ch = b.shape_of(x).dim(3);
      // Pre-activation bottleneck: BN-relu-conv x3.
      int pre = b.batch_norm(x, p + "_pre_bn");
      pre = b.relu(pre, p + "_pre_relu");
      int f = b.conv2d(pre, stage_ch[s] / 2, 1, 1, stride, Padding::kSame,
                       Activation::kNone, p + "_conv1");
      f = b.batch_norm(f, p + "_bn1");
      f = b.relu(f, p + "_relu1");
      f = b.conv2d(f, stage_ch[s] / 2, 3, 3, 1, Padding::kSame,
                   Activation::kNone, p + "_conv2");
      f = b.batch_norm(f, p + "_bn2");
      f = b.relu(f, p + "_relu2");
      f = b.conv2d(f, stage_ch[s], 1, 1, 1, Padding::kSame,
                   Activation::kNone, p + "_conv3");
      int shortcut = x;
      if (stride != 1 || in_ch != stage_ch[s]) {
        shortcut = b.conv2d(pre, stage_ch[s], 1, 1, stride, Padding::kSame,
                            Activation::kNone, p + "_shortcut");
      }
      x = b.add(shortcut, f, Activation::kNone, p + "_add");
    }
  }
  x = b.batch_norm(x, "final_bn");
  x = b.relu(x, "final_relu");
  x = b.mean(x, "global_pool");
  int logits = b.fully_connected(x, kClasses, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  ZooModel zm{b.finish({prob}), logits};
  zm.model.input_spec = image_spec();
  return zm;
}

ZooModel build_inception_mini(std::uint64_t seed, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("inception_mini", &rng);
  int x = b.input(Shape{batch, 32, 32, 3});
  x = conv_bn_act(b, x, 20, 3, 2, Activation::kRelu, "stem");
  for (int m = 0; m < 3; ++m) {
    std::string p = "mixed" + std::to_string(m);
    int b1 = conv_bn_act(b, x, 12, 1, 1, Activation::kRelu, p + "_b1");
    int b3 = conv_bn_act(b, x, 12, 1, 1, Activation::kRelu, p + "_b3a");
    b3 = conv_bn_act(b, b3, 16, 3, 1, Activation::kRelu, p + "_b3b");
    int b5 = conv_bn_act(b, x, 8, 1, 1, Activation::kRelu, p + "_b5a");
    b5 = conv_bn_act(b, b5, 12, 5, 1, Activation::kRelu, p + "_b5b");
    int bp = b.max_pool(x, 3, 1, Padding::kSame, p + "_pool");
    bp = conv_bn_act(b, bp, 12, 1, 1, Activation::kRelu, p + "_poolproj");
    x = b.concat({b1, b3, b5, bp}, p + "_concat");
    if (m < 2) {
      x = b.max_pool(x, 3, 2, Padding::kSame, p + "_downsample");
    }
  }
  x = b.mean(x, "global_pool");
  int logits = b.fully_connected(x, kClasses, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  ZooModel zm{b.finish({prob}), logits};
  zm.model.input_spec = image_spec();
  return zm;
}

ZooModel build_densenet121_mini(std::uint64_t seed, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("densenet121_mini", &rng);
  const int growth = 10;
  int x = b.input(Shape{batch, 32, 32, 3});
  x = b.conv2d(x, 20, 3, 3, 2, Padding::kSame, Activation::kNone, "stem_conv");
  for (int blk = 0; blk < 3; ++blk) {
    std::string bp = "dense" + std::to_string(blk);
    for (int layer = 0; layer < 4; ++layer) {
      std::string p = bp + "_l" + std::to_string(layer);
      int f = b.batch_norm(x, p + "_bn1");
      f = b.relu(f, p + "_relu1");
      f = b.conv2d(f, growth * 2, 1, 1, 1, Padding::kSame, Activation::kNone,
                   p + "_conv1");
      f = b.batch_norm(f, p + "_bn2");
      f = b.relu(f, p + "_relu2");
      f = b.conv2d(f, growth, 3, 3, 1, Padding::kSame, Activation::kNone,
                   p + "_conv2");
      x = b.concat({x, f}, p + "_concat");
    }
    if (blk < 2) {
      std::string p = bp + "_transition";
      const std::int64_t ch = b.shape_of(x).dim(3);
      int t = b.batch_norm(x, p + "_bn");
      t = b.relu(t, p + "_relu");
      t = b.conv2d(t, static_cast<int>(ch / 2), 1, 1, 1, Padding::kSame,
                   Activation::kNone, p + "_conv");
      x = b.avg_pool(t, 2, 2, Padding::kValid, p + "_pool");
    }
  }
  x = b.batch_norm(x, "final_bn");
  x = b.relu(x, "final_relu");
  x = b.mean(x, "global_pool");
  int logits = b.fully_connected(x, kClasses, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  ZooModel zm{b.finish({prob}), logits};
  zm.model.input_spec = image_spec();
  return zm;
}

const std::vector<ZooEntry>& image_zoo() {
  static const std::vector<ZooEntry> kZoo = {
      {"mobilenet_v1_mini", [](std::uint64_t s, int b) { return build_mobilenet_v1_mini(s, b); }},
      {"mobilenet_v2_mini", [](std::uint64_t s, int b) { return build_mobilenet_v2_mini(s, b); }},
      {"mobilenet_v3_mini", [](std::uint64_t s, int b) { return build_mobilenet_v3_mini(s, b); }},
      {"resnet50v2_mini", [](std::uint64_t s, int b) { return build_resnet50v2_mini(s, b); }},
      {"inception_mini", [](std::uint64_t s, int b) { return build_inception_mini(s, b); }},
      {"densenet121_mini", [](std::uint64_t s, int b) { return build_densenet121_mini(s, b); }},
  };
  return kZoo;
}

int node_id_by_name(const Graph& model, const std::string& name) {
  for (const Node& n : model.nodes) {
    if (n.name == name) return n.id;
  }
  MLX_FAIL() << "no node named '" << name << "' in " << model.name;
}

}  // namespace mlexray
