#include "src/models/zoo.h"

namespace mlexray {

namespace {

// Spectrogram input geometry must match SynthSpeech + SpectrogramConfig
// defaults: 2048 samples, frame 128, hop 64 -> 31 frames x 64 bins.
constexpr int kFrames = 31;
constexpr int kBins = 64;
constexpr int kKeywords = 8;

InputSpec audio_spec() {
  InputSpec spec;
  spec.height = kFrames;
  spec.width = kBins;
  spec.channels = 1;
  spec.spectrogram_log_scale = true;
  spec.range_lo = 0.0f;
  spec.range_hi = 1.0f;
  return spec;
}

}  // namespace

ZooModel build_kws_tiny_conv(std::uint64_t seed, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("kws_tiny_conv", &rng);
  int x = b.input(Shape{batch, kFrames, kBins, 1});
  x = b.conv2d(x, 8, 3, 3, 2, Padding::kSame, Activation::kNone, "conv1");
  x = b.batch_norm(x, "bn1");
  x = b.relu(x, "relu1");
  x = b.conv2d(x, 16, 3, 3, 2, Padding::kSame, Activation::kNone, "conv2");
  x = b.batch_norm(x, "bn2");
  x = b.relu(x, "relu2");
  x = b.mean(x, "global_pool");
  int logits = b.fully_connected(x, kKeywords, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  ZooModel zm{b.finish({prob}), logits};
  zm.model.input_spec = audio_spec();
  return zm;
}

ZooModel build_kws_low_latency_conv(std::uint64_t seed, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("kws_low_latency_conv", &rng);
  int x = b.input(Shape{batch, kFrames, kBins, 1});
  // One wide time-frequency conv, then FC layers (the TF speech-commands
  // "low_latency_conv" topology, scaled down).
  x = b.conv2d(x, 12, 5, 5, 2, Padding::kSame, Activation::kNone, "conv1");
  x = b.batch_norm(x, "bn1");
  x = b.relu(x, "relu1");
  x = b.avg_pool(x, 2, 2, Padding::kValid, "pool");
  x = b.fully_connected(x, 24, Activation::kNone, "fc1");
  x = b.relu(x, "fc1_relu");
  int logits = b.fully_connected(x, kKeywords, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  ZooModel zm{b.finish({prob}), logits};
  zm.model.input_spec = audio_spec();
  return zm;
}

ZooModel build_nnlm_mini(std::uint64_t seed, int vocab_size, int max_len,
                         int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("nnlm_mini", &rng);
  int ids = b.input(Shape{batch, max_len}, DType::kI32, "tokens");
  int x = b.embedding(ids, vocab_size, 16, "embedding");
  x = b.mean(x, "embedding_mean");
  x = b.fully_connected(x, 16, Activation::kNone, "fc1");
  x = b.relu(x, "fc1_relu");
  int logits = b.fully_connected(x, 2, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  return {b.finish({prob}), logits};
}

ZooModel build_mobilebert_mini(std::uint64_t seed, int vocab_size,
                               int max_len, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("mobilebert_mini", &rng);
  const int dim = 16;
  int ids = b.input(Shape{batch, max_len}, DType::kI32, "tokens");
  int x = b.embedding(ids, vocab_size, dim, "embedding");
  // Two token-mixing blocks: depthwise conv along the sequence axis mixes
  // tokens, 1x1 conv mixes features, with residuals (conv-mixer stand-in
  // for self-attention; see DESIGN.md §2.5).
  for (int blk = 0; blk < 2; ++blk) {
    std::string p = "mixer" + std::to_string(blk);
    int mixed = b.depthwise_conv2d(x, 3, 1, 1, Padding::kSame,
                                   Activation::kNone, p + "_token_mix");
    mixed = b.relu(mixed, p + "_relu1");
    int ff = b.conv2d(mixed, dim, 1, 1, 1, Padding::kSame, Activation::kNone,
                      p + "_feature_mix");
    ff = b.relu(ff, p + "_relu2");
    x = b.add(x, ff, Activation::kNone, p + "_residual");
  }
  x = b.mean(x, "pool");
  int logits = b.fully_connected(x, 2, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  return {b.finish({prob}), logits};
}

}  // namespace mlexray
