// SSD-mini: single-shot detector with two head scales and a choice of
// backbone ("mobilenet" or "resnet" — the paper's Fig-4b compares two
// detectors; see DESIGN.md §2.4 for the FasterRCNN substitution).
#pragma once

#include <string>
#include <vector>

#include "src/datasets/detection_metrics.h"
#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/preprocess/image.h"

namespace mlexray {

struct SsdModel {
  Graph model;  // training graph; outputs = {cls8, box8, cls4, box4}
  std::vector<int> grid_sizes{8, 4};
  std::vector<float> anchor_sizes{0.25f, 0.5f};
  int num_classes = 4;  // background excluded; head predicts classes+1
};

// backbone: "mobilenet" (depthwise blocks) or "resnet" (residual convs).
// batch > 1 builds the mini-batch training twin.
SsdModel build_ssd_mini(const std::string& backbone, std::uint64_t seed,
                        int batch = 1);

struct Anchor {
  float cx, cy, size;
};
// All anchors in head order (scale-major, row-major cells).
std::vector<Anchor> ssd_anchors(const SsdModel& ssd);

// Per-anchor classification targets (0 = background, c+1 = class c;
// -1 = ignore) and box regression targets for one example.
struct SsdTargets {
  std::vector<int> labels;          // size = total anchors
  std::vector<bool> positive;       // box-loss mask
  std::vector<float> box_deltas;    // [anchors, 4] (dcx, dcy, dw, dh)
};
SsdTargets encode_ssd_targets(const SsdModel& ssd,
                              const std::vector<DetObject>& objects,
                              float match_iou = 0.45f);

// Trains in place on sensor examples via the given (correct) pipeline.
void train_ssd(SsdModel* ssd, const std::vector<DetExample>& train_set,
               int epochs, std::uint64_t seed, bool verbose = false);

// Runs a deployed variant of the model (same node names / output order) on
// one preprocessed input and decodes + NMS-filters predictions.
std::vector<DetPrediction> ssd_predict(const SsdModel& ssd,
                                       Interpreter& interpreter,
                                       const Tensor& input);

// End-to-end mAP of a deployed model over sensor examples using a possibly
// buggy preprocessing pipeline.
double evaluate_ssd_map(const SsdModel& ssd, const Graph& deployed,
                        const OpResolver& resolver,
                        const std::vector<DetExample>& examples,
                        const ImagePipelineConfig& pipeline);

}  // namespace mlexray
