// Graph zoo: miniature versions of the architectures the paper evaluates.
//
// All builders return *training* graphs (BatchNorm nodes, standalone
// activations) with the logits FC node named "logits" and a final softmax
// named "prob". The converter/quantizer produce the deployment variants.
// Input spec (32x32x3 RGB, area-average resize, [-1,1]) is attached as model
// metadata — the "assumptions that get lost in the hand-off" (§2).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/graph/builder.h"

namespace mlexray {

struct ZooModel {
  Graph model;
  int logits_id = -1;  // pre-softmax node (training target)
};

// All builders take a batch size: deployment graphs use batch == 1; the
// training pipeline builds a batch-N twin (proper mini-batch BatchNorm
// statistics) and copies the fitted weights across (see trained_models.cc).

// --- image classification (SynthImageNet, 12 classes, 32x32x3) ---
ZooModel build_mobilenet_v1_mini(std::uint64_t seed, int batch = 1);
ZooModel build_mobilenet_v2_mini(std::uint64_t seed, int batch = 1);
ZooModel build_mobilenet_v3_mini(std::uint64_t seed, int batch = 1);  // squeeze-excite pools
ZooModel build_resnet50v2_mini(std::uint64_t seed, int batch = 1);
ZooModel build_inception_mini(std::uint64_t seed, int batch = 1);
ZooModel build_densenet121_mini(std::uint64_t seed, int batch = 1);

// --- keyword spotting (SynthSpeech spectrograms) ---
ZooModel build_kws_tiny_conv(std::uint64_t seed, int batch = 1);
ZooModel build_kws_low_latency_conv(std::uint64_t seed, int batch = 1);

// --- text (SynthIMDB sentiment) ---
ZooModel build_nnlm_mini(std::uint64_t seed, int vocab_size, int max_len,
                         int batch = 1);
// Token-mixing conv stand-in for MobileBert (see DESIGN.md §2.5).
ZooModel build_mobilebert_mini(std::uint64_t seed, int vocab_size, int max_len,
                               int batch = 1);

// Registry of the image-classification zoo in the layer-count order the
// paper's Tables 3/5 use. Builders take (seed, batch): batch == 1 is the
// deployment graph, batch > 1 the batched-inference variant the end-to-end
// benchmarks exercise (conv runs all batch images through one GEMM).
struct ZooEntry {
  std::string name;
  std::function<ZooModel(std::uint64_t seed, int batch)> build;
};
const std::vector<ZooEntry>& image_zoo();

// Finds a node id by name (e.g. "logits"); throws if absent.
int node_id_by_name(const Graph& model, const std::string& name);

}  // namespace mlexray
