#include "src/models/segmentation.h"

#include <cstring>
#include <numeric>

#include "src/train/trainer.h"

namespace mlexray {

ZooModel build_deeplab_mini(std::uint64_t seed, int batch) {
  Pcg32 rng(seed);
  GraphBuilder b("deeplab_mini", &rng);
  int x = b.input(Shape{batch, 32, 32, 3});
  int e1 = b.conv2d(x, 16, 3, 3, 2, Padding::kSame, Activation::kNone, "enc1");
  e1 = b.batch_norm(e1, "enc1_bn");
  e1 = b.relu(e1, "enc1_relu");                       // 16x16
  int e2 = b.conv2d(e1, 32, 3, 3, 2, Padding::kSame, Activation::kNone, "enc2");
  e2 = b.batch_norm(e2, "enc2_bn");
  e2 = b.relu(e2, "enc2_relu");                       // 8x8
  int m = b.conv2d(e2, 32, 3, 3, 1, Padding::kSame, Activation::kNone, "mid");
  m = b.batch_norm(m, "mid_bn");
  m = b.relu(m, "mid_relu");
  int u1 = b.upsample_nearest_2x(m, "up1");           // 16x16
  u1 = b.conv2d(u1, 16, 3, 3, 1, Padding::kSame, Activation::kNone, "dec1");
  u1 = b.batch_norm(u1, "dec1_bn");
  u1 = b.relu(u1, "dec1_relu");
  u1 = b.add(u1, e1, Activation::kNone, "skip1");     // encoder skip
  int u2 = b.upsample_nearest_2x(u1, "up2");          // 32x32
  u2 = b.conv2d(u2, 16, 3, 3, 1, Padding::kSame, Activation::kNone, "dec2");
  u2 = b.batch_norm(u2, "dec2_bn");
  u2 = b.relu(u2, "dec2_relu");
  int logits = b.conv2d(u2, SynthSeg::kClasses, 1, 1, 1, Padding::kSame,
                        Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  ZooModel zm{b.finish({prob}), logits};
  InputSpec spec;
  spec.height = 32;
  spec.width = 32;
  spec.channels = 3;
  spec.range_lo = -1.0f;
  spec.range_hi = 1.0f;
  zm.model.input_spec = spec;
  return zm;
}

void train_deeplab(ZooModel* zm, const std::vector<SegExample>& train_set,
                   int epochs, std::uint64_t seed, bool verbose) {
  TrainConfig tc;
  tc.learning_rate = 2e-3f;
  tc.num_threads = 2;
  Trainer trainer(&zm->model, tc);
  Pcg32 rng(seed);
  ImagePipelineConfig pipeline{zm->model.input_spec, PreprocBug::kNone};
  const auto batch = static_cast<std::size_t>(
      zm->model.node(zm->model.input_ids()[0]).output_shape.dim(0));
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    const std::size_t batches = (order.size() + batch - 1) / batch;
    for (std::size_t bi = 0; bi < batches; ++bi) {
      Tensor packed(DType::kF32, zm->model.node(0).output_shape);
      auto* dst = static_cast<std::uint8_t*>(packed.raw_data());
      std::vector<int> labels;
      for (std::size_t k = 0; k < batch; ++k) {
        const SegExample& ex = train_set[order[(bi * batch + k) % order.size()]];
        Tensor input = run_image_pipeline(ex.image_u8, pipeline);
        std::memcpy(dst + k * input.byte_size(), input.raw_data(),
                    input.byte_size());
        const std::int32_t* gt = ex.mask.data<std::int32_t>();
        for (std::int64_t i = 0; i < ex.mask.num_elements(); ++i) {
          labels.push_back(gt[i]);
        }
      }
      trainer.zero_grad();
      trainer.forward({packed});
      LossGrad lg =
          softmax_cross_entropy_rows(trainer.activation(zm->logits_id), labels);
      epoch_loss += lg.loss;
      std::vector<std::pair<int, Tensor>> seeds;
      seeds.emplace_back(zm->logits_id, std::move(lg.grad));
      trainer.backward(seeds);
      trainer.step();
    }
    if (verbose) {
      std::printf("  [deeplab] epoch %d/%d loss %.4f\n", epoch + 1, epochs,
                  epoch_loss / static_cast<double>(batches));
      std::fflush(stdout);
    }
  }
}

Tensor predict_mask(Interpreter& interpreter, const Tensor& input) {
  interpreter.set_input(0, input);
  interpreter.invoke();
  Tensor prob = interpreter.output(0).to_f32();
  const Shape& s = prob.shape();
  const std::int64_t classes = s.dim(3);
  const std::int64_t pixels = s.dim(1) * s.dim(2);
  Tensor mask = Tensor::i32(Shape{s.dim(1), s.dim(2)});
  const float* p = prob.data<float>();
  std::int32_t* m = mask.data<std::int32_t>();
  for (std::int64_t px = 0; px < pixels; ++px) {
    int best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (p[px * classes + c] > p[px * classes + best]) best = static_cast<int>(c);
    }
    m[px] = best;
  }
  return mask;
}

double evaluate_deeplab_miou(const Graph& deployed, const OpResolver& resolver,
                             const std::vector<SegExample>& examples,
                             const ImagePipelineConfig& pipeline) {
  Interpreter interp(&deployed, &resolver);
  std::vector<Tensor> predictions;
  predictions.reserve(examples.size());
  for (const SegExample& ex : examples) {
    Tensor input = run_image_pipeline(ex.image_u8, pipeline);
    predictions.push_back(predict_mask(interp, input));
  }
  return SynthSeg::mean_iou(predictions, examples);
}

}  // namespace mlexray
