// Train-once model cache.
//
// Benchmarks and examples need *trained* checkpoints (the paper's reference
// models). Training is deterministic, so each checkpoint is trained on first
// use and cached under cache_dir() (override with MLEXRAY_CACHE_DIR).
#pragma once

#include <string>
#include <vector>

#include "src/datasets/synth_image.h"
#include "src/datasets/synth_speech.h"
#include "src/datasets/synth_text.h"
#include "src/models/detection.h"
#include "src/models/segmentation.h"
#include "src/models/zoo.h"
#include "src/preprocess/audio.h"
#include "src/preprocess/image.h"
#include "src/preprocess/text.h"
#include "src/train/train_loop.h"

namespace mlexray {

// --- dataset -> model-input adapters (correct or buggy pipelines) ---

std::vector<LabeledExample> imagenet_examples(
    const std::vector<SensorExample>& sensors,
    const ImagePipelineConfig& pipeline);

std::vector<LabeledExample> speech_examples(
    const std::vector<SpeechExample>& waves,
    const AudioPipelineConfig& pipeline);

// Deterministic vocabulary over the SynthIMDB corpus.
const Vocabulary& imdb_vocabulary();

std::vector<LabeledExample> imdb_examples(
    const std::vector<TextExample>& texts, const TextPipelineConfig& pipeline);

// --- trained checkpoints (cached) ---

// zoo_name must be one of image_zoo() entries.
Graph trained_image_checkpoint(const std::string& zoo_name);

// name: "kws_tiny_conv" or "kws_low_latency_conv".
Graph trained_kws_checkpoint(const std::string& name);

Graph trained_nnlm_checkpoint();
Graph trained_mobilebert_checkpoint();

// Detection / segmentation (cached like the classifiers).
SsdModel trained_ssd(const std::string& backbone);  // "mobilenet" | "resnet"
ZooModel trained_deeplab();

// Standard dataset sizes shared by benches/tests so caches line up.
struct StandardData {
  static constexpr int kImageTrainPerClass = 32;
  static constexpr int kImageTestPerClass = 16;
  static constexpr std::uint64_t kImageTrainSeed = 1001;
  static constexpr std::uint64_t kImageTestSeed = 2002;
  static constexpr int kSpeechTrainPerClass = 32;
  static constexpr int kSpeechTestPerClass = 16;
  static constexpr int kTextTrain = 256;
  static constexpr int kTextTest = 128;
  static constexpr int kTextMaxLen = 24;
  static constexpr int kDetTrain = 192;
  static constexpr int kDetTest = 64;
  static constexpr int kSegTrain = 160;
  static constexpr int kSegTest = 48;
};

}  // namespace mlexray
