// Deeplab-mini: a small encoder-decoder for dense per-pixel classification
// (stand-in for the paper's Deeplab v3 segmentation app).
#pragma once

#include "src/datasets/synth_seg.h"
#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/models/zoo.h"
#include "src/preprocess/image.h"

namespace mlexray {

// Training graph; logits node ("logits") is [batch, 32, 32, kClasses].
ZooModel build_deeplab_mini(std::uint64_t seed, int batch = 1);

// Trains in place on SynthSeg examples.
void train_deeplab(ZooModel* zm, const std::vector<SegExample>& train_set,
                   int epochs, std::uint64_t seed, bool verbose = false);

// Predicted label map [H, W] i32 for one preprocessed input.
Tensor predict_mask(Interpreter& interpreter, const Tensor& input);

// End-to-end mIoU of a deployed model with a (possibly buggy) pipeline.
double evaluate_deeplab_miou(const Graph& deployed, const OpResolver& resolver,
                             const std::vector<SegExample>& examples,
                             const ImagePipelineConfig& pipeline);

}  // namespace mlexray
