#include "src/core/assertions.h"

#include <cmath>

#include "src/tensor/tensor_stats.h"

namespace mlexray {

namespace {

constexpr double kMatchTolerance = 1e-3;

bool frames_usable(const Trace& edge, const Trace& ref, const char* key) {
  if (edge.frames.empty() || ref.frames.empty()) return false;
  return edge.frames[0].has_tensor(key) && ref.frames[0].has_tensor(key);
}

AssertionResult skipped(const std::string& why) {
  AssertionResult r;
  r.triggered = false;
  r.message = "skipped: " + why;
  return r;
}

// Swap R/B on an NHWC float tensor.
Tensor swap_rb_nhwc(const Tensor& t) {
  Tensor out = t;
  const Shape& s = out.shape();
  const std::int64_t ch = s.dim(s.rank() - 1);
  if (ch < 3) return out;
  float* p = out.data<float>();
  const std::int64_t pixels = out.num_elements() / ch;
  for (std::int64_t i = 0; i < pixels; ++i) {
    std::swap(p[i * ch + 0], p[i * ch + 2]);
  }
  return out;
}

}  // namespace

AssertionFn make_channel_arrangement_assertion() {
  return [](const Trace& edge, const Trace& ref) -> AssertionResult {
    if (!frames_usable(edge, ref, trace_keys::kPreprocessOut)) {
      return skipped("preprocess.out not logged in both traces");
    }
    AssertionResult r;
    // Per-frame evidence: a frame where the swapped tensor matches but the
    // direct one does not proves a channel-order mix-up. Grayscale frames
    // (R == B) match both ways and are uninformative.
    int swap_evidence = 0;
    for (std::size_t f = 0; f < std::min(edge.frames.size(), ref.frames.size());
         ++f) {
      const Tensor& e = edge.frames[f].tensor(trace_keys::kPreprocessOut);
      const Tensor& g = ref.frames[f].tensor(trace_keys::kPreprocessOut);
      if (e.num_elements() != g.num_elements()) continue;
      if (!all_close(e, g, kMatchTolerance) &&
          all_close(swap_rb_nhwc(e), g, kMatchTolerance)) {
        ++swap_evidence;
      }
    }
    if (swap_evidence > 0) {
      r.triggered = true;
      r.message = "input channels are swapped (BGR delivered where RGB "
                  "expected, or vice versa)";
    }
    return r;
  };
}

AssertionFn make_preproc_bug_assertion(const InputSpec& spec, PreprocBug bug) {
  return [spec, bug](const Trace& edge, const Trace& ref) -> AssertionResult {
    if (edge.frames.empty() ||
        !edge.frames[0].has_tensor(trace_keys::kSensorRaw) ||
        !edge.frames[0].has_tensor(trace_keys::kPreprocessOut)) {
      return skipped("sensor.raw/preprocess.out not logged");
    }
    (void)ref;  // recompute-and-match needs only the edge logs + the spec
    AssertionResult r;
    int bug_matches = 0;
    int correct_matches = 0;
    const std::size_t frames = std::min<std::size_t>(edge.frames.size(), 8);
    for (std::size_t f = 0; f < frames; ++f) {
      const Tensor& raw = edge.frames[f].tensor(trace_keys::kSensorRaw);
      const Tensor& logged = edge.frames[f].tensor(trace_keys::kPreprocessOut);
      Tensor correct =
          run_image_pipeline(raw, ImagePipelineConfig{spec, PreprocBug::kNone});
      Tensor buggy = run_image_pipeline(raw, ImagePipelineConfig{spec, bug});
      if (logged.num_elements() == correct.num_elements() &&
          all_close(logged, correct, kMatchTolerance)) {
        ++correct_matches;
      }
      if (logged.num_elements() == buggy.num_elements() &&
          all_close(logged, buggy, kMatchTolerance)) {
        ++bug_matches;
      }
    }
    if (bug_matches > 0 && correct_matches == 0) {
      r.triggered = true;
      r.message = "edge preprocessing matches the '" + preproc_bug_name(bug) +
                  "' bug variant, not the model's documented spec";
    }
    return r;
  };
}

AssertionFn make_normalization_range_assertion() {
  return [](const Trace& edge, const Trace& ref) -> AssertionResult {
    if (!frames_usable(edge, ref, trace_keys::kModelInput)) {
      return skipped("model.input not logged in both traces");
    }
    AssertionResult r;
    // Compare pooled input ranges: an affine mismatch shows up as a
    // systematic difference in (min, max) that a single scale+shift explains.
    double e_min = 1e30, e_max = -1e30, g_min = 1e30, g_max = -1e30;
    const std::size_t frames = std::min(edge.frames.size(), ref.frames.size());
    for (std::size_t f = 0; f < frames; ++f) {
      TensorSummary e = summarize(edge.frames[f].tensor(trace_keys::kModelInput));
      TensorSummary g = summarize(ref.frames[f].tensor(trace_keys::kModelInput));
      e_min = std::min<double>(e_min, e.min);
      e_max = std::max<double>(e_max, e.max);
      g_min = std::min<double>(g_min, g.min);
      g_max = std::max<double>(g_max, g.max);
    }
    const double e_range = e_max - e_min;
    const double g_range = g_max - g_min;
    if (e_range <= 0 || g_range <= 0) return r;
    const double scale_ratio = e_range / g_range;
    const double offset = e_min - g_min;
    if (std::abs(scale_ratio - 1.0) > 0.2 || std::abs(offset) > 0.2 * g_range) {
      r.triggered = true;
      r.message = "input normalization mismatch: edge range [" +
                  std::to_string(e_min) + "," + std::to_string(e_max) +
                  "] vs reference [" + std::to_string(g_min) + "," +
                  std::to_string(g_max) + "]";
    }
    return r;
  };
}

AssertionFn make_quantization_drift_assertion(double threshold) {
  return [threshold](const Trace& edge, const Trace& ref) -> AssertionResult {
    if (edge.frames.empty() || ref.frames.empty() ||
        edge.frames[0].layer_outputs.empty() ||
        ref.frames[0].layer_outputs.empty()) {
      return skipped("per-layer outputs not logged");
    }
    AssertionResult r;
    DeploymentValidator validator;
    PerLayerReport report = validator.per_layer_drift(
        edge, ref, ErrorMetric::kNormalizedRmse, threshold);
    // Input-side bugs are flagged by the preprocessing assertions; this one
    // fires only if the inputs agree but an internal layer diverges.
    bool inputs_agree = true;
    if (frames_usable(edge, ref, trace_keys::kModelInput)) {
      inputs_agree = normalized_rmse(
                         edge.frames[0].tensor(trace_keys::kModelInput),
                         ref.frames[0].tensor(trace_keys::kModelInput)) <
                     threshold;
    }
    if (inputs_agree && report.first_suspect.has_value()) {
      r.triggered = true;
      r.message = "model-internal drift starting at layer '" +
                  *report.first_suspect +
                  "' (quantization or kernel issue; inspect that op)";
    }
    return r;
  };
}

AssertionFn make_constant_output_assertion(double min_stddev) {
  return [min_stddev](const Trace& edge, const Trace& ref) -> AssertionResult {
    (void)ref;
    if (edge.frames.size() < 2 ||
        !edge.frames[0].has_tensor(trace_keys::kModelOutput)) {
      return skipped("need >=2 frames with model.output");
    }
    AssertionResult r;
    // Max element-wise stddev of the output across frames.
    const Tensor& first = edge.frames[0].tensor(trace_keys::kModelOutput);
    const std::int64_t n = first.num_elements();
    std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
    std::vector<double> sum_sq(static_cast<std::size_t>(n), 0.0);
    for (const FrameTrace& f : edge.frames) {
      Tensor t = f.tensor(trace_keys::kModelOutput).to_f32();
      const float* p = t.data<float>();
      for (std::int64_t i = 0; i < n; ++i) {
        sum[static_cast<std::size_t>(i)] += p[i];
        sum_sq[static_cast<std::size_t>(i)] += static_cast<double>(p[i]) * p[i];
      }
    }
    const double count = static_cast<double>(edge.frames.size());
    double max_std = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      double mean = sum[static_cast<std::size_t>(i)] / count;
      double var = sum_sq[static_cast<std::size_t>(i)] / count - mean * mean;
      max_std = std::max(max_std, std::sqrt(std::max(0.0, var)));
    }
    if (max_std < min_stddev) {
      r.triggered = true;
      r.message = "model output is constant across frames (max stddev " +
                  std::to_string(max_std) + ") — invalid execution";
    }
    return r;
  };
}

AssertionFn make_latency_budget_assertion(double budget_ms) {
  return [budget_ms](const Trace& edge, const Trace& ref) -> AssertionResult {
    (void)ref;
    if (edge.frames.empty()) return skipped("empty trace");
    AssertionResult r;
    double total = 0.0;
    for (const FrameTrace& f : edge.frames) {
      total += f.scalar(trace_keys::kInferenceLatencyMs);
    }
    double mean = total / static_cast<double>(edge.frames.size());
    if (mean > budget_ms) {
      r.triggered = true;
      r.message = "mean inference latency " + std::to_string(mean) +
                  " ms exceeds budget " + std::to_string(budget_ms) + " ms";
    }
    return r;
  };
}

AssertionFn make_memory_budget_assertion(double budget_bytes) {
  return [budget_bytes](const Trace& edge, const Trace& ref) -> AssertionResult {
    (void)ref;
    if (edge.frames.empty()) return skipped("empty trace");
    AssertionResult r;
    double peak = 0.0;
    for (const FrameTrace& f : edge.frames) {
      peak = std::max(peak, f.scalar(trace_keys::kPeakMemoryBytes));
    }
    if (peak > budget_bytes) {
      r.triggered = true;
      r.message = "peak tensor memory " + std::to_string(peak) +
                  " bytes exceeds budget " + std::to_string(budget_bytes);
    }
    return r;
  };
}

void register_builtin_image_assertions(DeploymentValidator& validator,
                                       const InputSpec& spec) {
  validator.add_assertion("channel_arrangement",
                          make_channel_arrangement_assertion());
  validator.add_assertion(
      "resize_function",
      make_preproc_bug_assertion(spec, PreprocBug::kWrongResize));
  validator.add_assertion(
      "normalization_scale",
      make_preproc_bug_assertion(spec, PreprocBug::kWrongNormalization));
  validator.add_assertion(
      "orientation", make_preproc_bug_assertion(spec, PreprocBug::kRotated90));
  validator.add_assertion("normalization_range",
                          make_normalization_range_assertion());
  validator.add_assertion("quantization_drift",
                          make_quantization_drift_assertion());
  validator.add_assertion("constant_output", make_constant_output_assertion());
}

}  // namespace mlexray
