// Built-in assertion library (paper §3.4: "built-in assertions for each of
// these bugs, so that a simple automated validation can easily catch these
// bugs in user application code").
//
// Preprocessing assertions use the recompute-and-match strategy: from the
// logged raw sensor frame, recompute the preprocessing output under the
// correct spec and under a candidate bug; if the edge log matches the buggy
// recompute (and not the correct one), the bug is identified — the same
// logic as the paper's channel_assertion example, generalized.
#pragma once

#include "src/core/validation.h"
#include "src/preprocess/image.h"

namespace mlexray {

// Direct RGB<->BGR check (the paper's §3.2 example assertion).
AssertionFn make_channel_arrangement_assertion();

// Recompute-and-match assertion for any single preprocessing bug.
AssertionFn make_preproc_bug_assertion(const InputSpec& spec, PreprocBug bug);

// Detects an affine range mismatch (e.g. [0,1] vs [-1,1]) between the edge
// and reference model inputs even when no raw frame was logged.
AssertionFn make_normalization_range_assertion();

// Flags the first layer whose output drift exceeds `threshold` while the
// model inputs agree — i.e. a model-internal (quantization/kernel) issue.
AssertionFn make_quantization_drift_assertion(double threshold = 0.1);

// Triggers when the model output barely varies across frames
// (the "invalid or constant output" failure mode of §4.4).
AssertionFn make_constant_output_assertion(double min_stddev = 1e-4);

// System-metric budgets (Fig 3's latency/memory checks).
AssertionFn make_latency_budget_assertion(double budget_ms);
AssertionFn make_memory_budget_assertion(double budget_bytes);

// Registers every built-in that applies to an image-classification app.
void register_builtin_image_assertions(DeploymentValidator& validator,
                                       const InputSpec& spec);

}  // namespace mlexray
