// EXray trace: the log data model (paper §3.2).
//
// Per frame, a trace holds key->tensor entries (model input/output, custom
// function outputs, peripheral sensors), key->scalar metrics (latencies,
// memory), and — when per-layer logging is enabled — every layer's named
// output and latency. Traces serialize to .mlxtrace files so edge logs can
// be shipped to a workstation for offline validation.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/drift/digest.h"
#include "src/tensor/tensor.h"

namespace mlexray {

// Canonical keys used by the built-in pipelines and assertions.
namespace trace_keys {
inline constexpr const char* kSensorRaw = "sensor.raw";
inline constexpr const char* kPreprocessOut = "preprocess.out";
inline constexpr const char* kModelInput = "model.input";
inline constexpr const char* kModelOutput = "model.output";
inline constexpr const char* kInferenceLatencyMs = "latency.inference_ms";
inline constexpr const char* kEndToEndLatencyMs = "latency.e2e_ms";
inline constexpr const char* kSensorLatencyMs = "latency.sensor_ms";
inline constexpr const char* kPeakMemoryBytes = "memory.peak_bytes";
inline constexpr const char* kPredictedLabel = "output.predicted_label";

// Key for the i-th model output in model-io capture: kModelOutput for
// output 0 (the historical single-output key), "model.output:i" beyond —
// multi-head models (SSD box + class heads) log one tensor per head.
std::string model_output_key(int output_index);
}  // namespace trace_keys

struct FrameTrace {
  int frame_id = 0;
  std::map<std::string, Tensor> tensors;
  std::map<std::string, double> scalars;
  // Per-layer details (execution order), present when per-layer logging is on.
  std::vector<std::string> layer_names;
  std::vector<Tensor> layer_outputs;
  std::vector<double> layer_latency_ms;
  // Per-layer streaming digests (execution order, parallel to layer_names),
  // present when digest capture is on. Format v2 carries these on the wire;
  // v1 traces load with the vector empty.
  std::vector<LayerDigest> layer_digests;

  bool has_tensor(const std::string& key) const {
    return tensors.count(key) > 0;
  }
  const Tensor& tensor(const std::string& key) const;
  double scalar(const std::string& key) const;
};

struct Trace {
  std::string pipeline_name;
  std::vector<FrameTrace> frames;

  std::size_t serialized_bytes() const;
};

std::vector<std::uint8_t> serialize_trace(const Trace& trace);
Trace deserialize_trace(const std::vector<std::uint8_t>& bytes);
void save_trace(const Trace& trace, const std::filesystem::path& path);
Trace load_trace(const std::filesystem::path& path);

// Tolerant load for traces from a crashed or killed writer: the spooler
// re-patches the header count per batch, so a dead process leaves a valid
// prefix plus at most one torn tail frame. Reads frames until the header
// count is satisfied or a frame fails to parse, drops the torn tail, and
// reports how many frames the header promised but the file could not
// deliver via *truncated_frames (0 for an intact file). Still throws
// MlxError when the file is not an mlxtrace at all (bad magic / unreadable
// header). trace-info uses this so a truncated device log is inspectable
// instead of an error.
Trace load_trace_tolerant(const std::filesystem::path& path,
                          std::size_t* truncated_frames = nullptr);

// Wire-format versions. v1 is the original layout; v2 appends a per-frame
// digest section after the layer latencies (and announces itself with a
// distinct magic). Writers always emit the current version; readers accept
// both, so v1 device logs stay loadable.
inline constexpr int kTraceVersion1 = 1;
inline constexpr int kTraceVersion2 = 2;
inline constexpr int kTraceVersionCurrent = kTraceVersion2;

// Frame-level framing, shared by the whole-trace (de)serializers above and
// the TraceBuffer spooler, which streams frames into a .mlxtrace file as
// they are captured (same on-disk format, frame count patched at close).
// The version parameter selects the frame layout; pass kTraceVersion1 only
// to read (or test-write) legacy traces.
class BinaryWriter;
class BinaryReader;
void serialize_frame(BinaryWriter& w, const FrameTrace& frame,
                     int version = kTraceVersionCurrent);
FrameTrace deserialize_frame(BinaryReader& r,
                             int version = kTraceVersionCurrent);

// Byte offset of the u32 frame-count field inside a serialized trace with
// this pipeline name (magic + length-prefixed name precede it).
std::size_t trace_frame_count_offset(const std::string& pipeline_name);

}  // namespace mlexray
