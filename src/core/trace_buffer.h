// TraceBuffer: arena-style, push-based capture sink for instrumented invokes
// (paper §3.2 telemetry at Table-2 overhead).
//
// Attached to a Session as its InvokeObserver, it captures per-layer
// latencies and raw-dtype layer outputs as each prepared step finishes, plus
// every model output and user scalars/tensors, into pre-sized reusable frame
// storage:
//
//  - trace keys are interned once into small integer ids — no std::string
//    map keys on the hot path;
//  - per-layer outputs are captured in their raw dtype (int8 activations
//    stay int8; dequantization via Tensor::to_f32 happens at offline trace
//    reading — validation, trace-info);
//  - model-io mode records *all* model outputs (e.g. the SSD box + class
//    heads), output 0 under trace_keys::kModelOutput and output i under
//    trace_keys::model_output_key(i);
//  - capture frames form a small ring (two buffers unless spooling widens
//    it): the hot thread fills one CaptureFrame while completed ones drain
//    (retained into the in-memory Trace, or serialized to a .mlxtrace spool
//    file by a background thread);
//  - after the ring has warmed, steady-state capture performs zero heap
//    allocations — tests/test_observer.cc enforces this with the same
//    operator-new counter test_kernel_grid.cc uses for bare invoke.
//
// Sessions sharing one Model attach one TraceBuffer each; the buffer holds
// no model state beyond the bound session's layer layout. EdgeMLMonitor
// (src/core/monitor.h) is a thin façade over this class; use TraceBuffer
// directly only when the monitor's bracketing API is in the way (e.g. the
// overhead benchmarks).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/trace.h"
#include "src/interpreter/invoke_observer.h"

namespace mlexray {

class Interpreter;
class Session;

// Capture configuration (the paper's instrumentation modes). Lives here so
// the buffer is self-contained; EdgeMLMonitor re-exports it.
struct MonitorOptions {
  bool per_layer_outputs = false;  // offline validation mode (Tables 3/5)
  // Always-on fleet-monitoring mode: per-layer streaming digests (moments +
  // quantile sketch / int8 histogram, src/drift/digest.h) instead of raw
  // tensors. Fixed-size storage per layer, zero steady-state allocations,
  // and a fraction of the raw-output capture cost — cheap enough to leave
  // enabled in serving (bench_drift gates the overhead vs bare invoke).
  bool per_layer_digests = false;
  bool per_layer_latency = true;
  bool log_model_io = true;
  // When false, next_frame() discards frames after counting them (they still
  // reach the spool file when spooling is active). Overhead benchmarks and
  // fire-and-forget deployments use this to keep memory flat.
  bool retain_frames = true;
  // Capture-frame ring size while spooling (clamped to >= 2). A deeper ring
  // lets the spool worker batch several completed frames into one write per
  // wakeup, cutting syscall count for high-FPS pipelines; the hot thread
  // only blocks when all spare frames are queued behind the writer.
  int spool_queue_frames = 4;
};

class TraceBuffer : public InvokeObserver {
 public:
  explicit TraceBuffer(MonitorOptions options = {});
  ~TraceBuffer() override;

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  // --- binding --------------------------------------------------------------
  // One-time prepare for a session: records the per-layer layout (names,
  // dtypes, shapes, quant params — shared across frames, not stored per
  // frame), interns a key per model output, and pre-sizes every capture
  // frame to the model's byte sizes. Rebinding to a different session
  // rebuilds the layout. The Interpreter overload binds its session.
  void bind(const Session& session);
  void bind(const Interpreter& interpreter);
  bool bound_to(const Session& session) const { return bound_ == &session; }
  bool bound_to(const Interpreter& interpreter) const;

  // --- keys -----------------------------------------------------------------
  // Returns the stable id for a key, interning it on first sight (the only
  // allocating key operation; canonical trace_keys are interned at
  // construction). Hot-path capture APIs take ids only.
  std::uint16_t intern_key(const std::string& key);
  // By value: the spool worker resolves names concurrently with interning,
  // so references into the table cannot be handed out.
  std::string key_name(std::uint16_t id) const;

  // --- hot-path capture -----------------------------------------------------
  void set_scalar(std::uint16_t key_id, double value);
  // Deep-copies the tensor (raw dtype) into the frame's slot for key_id,
  // reusing the slot's byte storage across frames.
  void log_tensor(std::uint16_t key_id, const Tensor& value);

  // InvokeObserver hooks (fired by the attached session).
  void on_invoke_begin(std::size_t step_count) override;
  void on_step(const Node& node, const Tensor& output,
               double latency_ms) override;
  void on_invoke_end(const SessionStats& stats) override;

  // Pull-style capture for call sites that bracket invoke manually without
  // attaching the buffer as observer: replays the retained node outputs and
  // last_stats latencies through the same on_step path (binds on demand).
  void capture_pull(const Session& session);
  void capture_pull(const Interpreter& interpreter);

  // True if the current frame captured an invoke since the last next_frame().
  bool captured_invoke() const { return frames_[active_].has_invoke; }

  // Finalizes the current frame — retained, spooled, or discarded per
  // options — and advances to the next capture buffer. The conversion to
  // FrameTrace (which allocates) happens here or on the spooler thread,
  // never inside the invoke window.
  void next_frame();

  // --- spooling -------------------------------------------------------------
  // Streams finalized frames to `path` (.mlxtrace, same format as
  // save_trace) from a background thread. Completed frames enter a bounded
  // FIFO (the capture ring above); the worker drains every queued frame per
  // wakeup and writes the whole batch with one stream write, so high-FPS
  // pipelines pay one syscall for several frames. The hot thread only
  // blocks when it laps the writer with the whole ring in flight.
  void open_spool(const std::filesystem::path& path);
  // Flushes, joins the spooler, patches the frame count into the file
  // header, and rethrows any spooler IO error. Returns frames written.
  std::size_t close_spool();
  bool spooling() const { return spool_thread_.joinable(); }
  // Frames the worker has durably written (header re-patched + flushed):
  // the crash-safe prefix of the spool file. Everything up to this count is
  // readable even if the process dies before close_spool().
  std::size_t spooled_frames() const;
  // Of those, frames that carried per-layer digests — digest frames ride the
  // same one-write-per-wakeup batch path as raw frames; tests assert fleet
  // digests reach disk durably through this counter.
  std::size_t spooled_digest_frames() const;

  // --- retained trace -------------------------------------------------------
  const Trace& trace() const { return trace_; }
  Trace take_trace();
  void set_pipeline_name(std::string name);

  int frames_captured() const { return frames_captured_; }
  // Index of the buffer currently capturing — cycles through the ring on
  // next_frame(); tests assert the buffer rotation through it.
  int active_buffer() const { return active_; }
  // Number of capture buffers in the ring (2 unless spooling widened it).
  int buffer_count() const { return static_cast<int>(frames_.size()); }
  // Bytes a fully captured frame holds (layer bytes + model outputs), i.e.
  // the per-frame capture cost of the current mode.
  std::size_t frame_capture_bytes() const;
  // Largest number of frames the spool worker wrote with a single stream
  // write so far — observability for the batching behaviour.
  std::size_t max_spool_batch() const;
  const MonitorOptions& options() const { return options_; }

 private:
  struct TensorSlot {
    std::uint16_t key = 0;
    bool used = false;
    DType dtype = DType::kF32;
    Shape shape;
    QuantParams quant;
    std::vector<std::uint8_t> bytes;  // capacity persists across frames
  };
  struct CaptureFrame {
    int frame_id = 0;
    bool has_invoke = false;
    std::vector<std::pair<std::uint16_t, double>> scalars;
    std::vector<TensorSlot> tensors;
    std::vector<double> layer_latency_ms;                // step-indexed
    std::vector<std::vector<std::uint8_t>> layer_bytes;  // step-indexed
    std::vector<LayerDigest> layer_digests;              // step-indexed
  };
  // Per-layer metadata shared by every frame (set at bind).
  struct LayerInfo {
    int node_id = -1;
    std::string name;
    DType dtype = DType::kF32;
    Shape shape;
    QuantParams quant;
    std::size_t byte_size = 0;
  };

  void reset_frame(CaptureFrame& frame, int frame_id);
  // Pre-sizes one frame's per-layer storage to the bound layout.
  void size_frame(CaptureFrame& frame) const;
  FrameTrace to_frame_trace(const CaptureFrame& frame) const;
  void spool_worker();
  void spool_enqueue(const CaptureFrame* frame);
  void spool_wait_free(const CaptureFrame* frame);
  bool spool_holds(const CaptureFrame* frame) const;  // caller holds spool_mu_

  MonitorOptions options_;
  const Session* bound_ = nullptr;
  std::vector<LayerInfo> layers_;

  // The key table is the one structure both the hot thread (interning a
  // first-seen key) and the spool worker (resolving names during frame
  // serialization) touch; key_mu_ covers it. Ids are stable once handed out.
  mutable std::mutex key_mu_;
  std::vector<std::string> key_names_;
  std::map<std::string, std::uint16_t> key_ids_;
  std::uint16_t key_latency_ = 0;
  // One key per model output of the bound session; [0] is kModelOutput.
  std::vector<std::uint16_t> key_model_outputs_;

  std::vector<CaptureFrame> frames_;  // capture ring; size 2 unless spooling
  int active_ = 0;
  std::size_t step_cursor_ = 0;
  int next_frame_id_ = 0;
  int frames_captured_ = 0;

  Trace trace_;

  // Spool state: bounded FIFO of completed frames between the hot thread and
  // the writer. spool_queue_ holds frames waiting for the worker;
  // spool_batch_ holds the frames the worker is currently serializing (it
  // swaps the queue out whole, so both vectors keep their reserved capacity
  // and the steady state never allocates).
  std::thread spool_thread_;
  mutable std::mutex spool_mu_;
  std::condition_variable spool_cv_;
  std::vector<const CaptureFrame*> spool_queue_;
  std::vector<const CaptureFrame*> spool_batch_;
  bool spool_stop_ = false;
  std::string spool_error_;
  std::ofstream spool_out_;
  std::size_t spool_count_offset_ = 0;
  std::size_t spool_frames_ = 0;         // written by the worker
  std::size_t spool_digest_frames_ = 0;  // written by the worker
  std::size_t spool_enqueued_ = 0;       // hot-thread count; guards bind()
  std::size_t max_spool_batch_ = 0;      // written by the worker
};

}  // namespace mlexray
