// Deployment validation (paper §3.4 / Fig 2): accuracy check, per-layer
// drift localisation, per-layer latency analysis, and an extensible
// assertion engine for root-cause analysis.
#pragma once

#include <functional>
#include <optional>

#include "src/core/trace.h"

namespace mlexray {

// Pluggable layer-drift metric. kNormalizedRmse is the paper's rMSE-hat.
enum class ErrorMetric { kNormalizedRmse, kLinf, kCosine };

struct AccuracyReport {
  double edge_accuracy = 0.0;
  double reference_accuracy = 0.0;
  double drop = 0.0;           // reference - edge
  bool degraded = false;       // drop > tolerance
};

struct LayerDrift {
  std::string layer;
  double error = 0.0;     // averaged over frames
  bool suspect = false;   // above threshold
};

struct PerLayerReport {
  std::vector<LayerDrift> drifts;          // in execution order
  std::optional<std::string> first_suspect;
  double threshold = 0.0;
};

struct LayerLatency {
  std::string layer;
  double mean_ms = 0.0;
  bool straggler = false;  // far above the per-layer median
};

struct LatencyReport {
  std::vector<LayerLatency> layers;
  double total_ms = 0.0;
  double median_ms = 0.0;
};

struct AssertionResult {
  std::string name;
  bool triggered = false;  // true => a problem was detected
  std::string message;
};

// Assertion functions inspect the edge and reference traces (paper §3.2's
// "arbitrary function that can indicate whether a bug exists").
using AssertionFn =
    std::function<AssertionResult(const Trace& edge, const Trace& reference)>;

class DeploymentValidator {
 public:
  // Step 1 of the Fig-2 flow: accuracy match between pipelines.
  AccuracyReport validate_accuracy(const Trace& edge, const Trace& reference,
                                   const std::vector<int>& labels,
                                   double tolerance = 0.02) const;

  // Step 2: per-layer output drift, aligned by layer name (layers present in
  // both traces; extra Quantize/Dequantize layers are skipped naturally).
  PerLayerReport per_layer_drift(const Trace& edge, const Trace& reference,
                                 ErrorMetric metric = ErrorMetric::kNormalizedRmse,
                                 double threshold = 0.1) const;

  // Step 2 over streaming digests: the same report shape, but the error is
  // digest_drift (normalized quantile-curve distance, src/drift/digest.h)
  // between each layer's digests merged across frames. Works when either
  // trace was recorded digest-only (no raw tensors to diff pairwise) — the
  // fleet-monitoring capture mode; raw per-layer traces are digested on the
  // fly. Distribution-blind bugs (e.g. channel order) need the raw-tensor
  // path above or the Engine canary.
  PerLayerReport per_layer_digest_drift(const Trace& edge,
                                        const Trace& reference,
                                        double threshold = 0.1) const;

  // Latency analysis on one trace: per-layer means + straggler flags.
  LatencyReport per_layer_latency(const Trace& trace,
                                  double straggler_factor = 8.0) const;

  // Step 3: root-cause assertions (built-ins + user-registered).
  void add_assertion(const std::string& name, AssertionFn fn);
  std::vector<AssertionResult> run_assertions(const Trace& edge,
                                              const Trace& reference) const;

  // Renders the full Fig-2 style report.
  std::string report(const AccuracyReport& accuracy,
                     const PerLayerReport& layers,
                     const std::vector<AssertionResult>& assertions) const;

 private:
  std::vector<std::pair<std::string, AssertionFn>> assertions_;
};

}  // namespace mlexray
