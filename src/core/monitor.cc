#include "src/core/monitor.h"

#include "src/tensor/alloc_stats.h"

namespace mlexray {

EdgeMLMonitor::EdgeMLMonitor(MonitorOptions options) : buffer_(options) {
  key_latency_ = buffer_.intern_key(trace_keys::kInferenceLatencyMs);
  key_peak_memory_ = buffer_.intern_key(trace_keys::kPeakMemoryBytes);
  key_sensor_latency_ = buffer_.intern_key(trace_keys::kSensorLatencyMs);
}

// Detach from the currently observed session — but only if it is still
// *our* buffer attached there: another monitor may have observed the same
// session since, and clearing its observer would silently stop that
// monitor's push capture.
void EdgeMLMonitor::detach() {
  if (observed_ == nullptr) return;
  if (observed_->observer() == &buffer_) observed_->set_observer(nullptr);
  observed_ = nullptr;
}

EdgeMLMonitor::~EdgeMLMonitor() { detach(); }

void EdgeMLMonitor::observe(Session& session) {
  // Not just a pointer check: a pooled session handed back by the Engine
  // has its observer cleared on release, so re-observing the same session
  // after a release/acquire round trip must re-attach, not early-return.
  if (observed_ == &session && session.observer() == &buffer_) return;
  detach();
  buffer_.bind(session);
  session.set_observer(&buffer_);
  observed_ = &session;
}

void EdgeMLMonitor::unobserve(Session& session) {
  if (observed_ != &session) return;
  detach();
}

void EdgeMLMonitor::on_inf_start() { inf_start_ = Clock::now(); }

void EdgeMLMonitor::on_inf_stop(const Session& session) {
  // Legacy pull path for call sites that bracket invoke without observe():
  // replay the retained node outputs through the push capture storage.
  if (!buffer_.bound_to(session) || !buffer_.captured_invoke()) {
    // capture_pull rebinds the buffer's layer layout to `session`; if it
    // is still attached as another session's observer, that session's
    // next invoke would trip the layout checks mid-flight. Detach first —
    // the monitor now follows the session it was handed, as the pull-era
    // API always did.
    if (observed_ != nullptr && observed_ != &session) detach();
    buffer_.capture_pull(session);
  }
  // The façade's bracket includes observer capture cost, matching what the
  // instrumented app experiences; it overwrites the invoke-only total the
  // buffer recorded.
  buffer_.set_scalar(
      key_latency_,
      std::chrono::duration<double, std::milli>(Clock::now() - inf_start_)
          .count());
  // High-water mark of all tracked allocations (tensors, arena blocks,
  // prepared weight panels) — a real peak, not the instantaneous level.
  buffer_.set_scalar(
      key_peak_memory_,
      static_cast<double>(AllocStats::instance().peak_bytes()));
}

void EdgeMLMonitor::on_sensor_start() { sensor_start_ = Clock::now(); }

void EdgeMLMonitor::on_sensor_stop() {
  buffer_.set_scalar(
      key_sensor_latency_,
      std::chrono::duration<double, std::milli>(Clock::now() - sensor_start_)
          .count());
}

void EdgeMLMonitor::log_tensor(const std::string& key, const Tensor& value) {
  buffer_.log_tensor(buffer_.intern_key(key), value);
}

void EdgeMLMonitor::log_scalar(const std::string& key, double value) {
  buffer_.set_scalar(buffer_.intern_key(key), value);
}

void EdgeMLMonitor::next_frame() { buffer_.next_frame(); }

void EdgeMLMonitor::spool_to(const std::filesystem::path& path) {
  buffer_.open_spool(path);
}

std::size_t EdgeMLMonitor::finish_spool() { return buffer_.close_spool(); }

}  // namespace mlexray
