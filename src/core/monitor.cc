#include "src/core/monitor.h"

#include "src/tensor/alloc_stats.h"

namespace mlexray {

EdgeMLMonitor::EdgeMLMonitor(MonitorOptions options) : options_(options) {
  current_.frame_id = next_frame_id_;
}

void EdgeMLMonitor::on_inf_start() { inf_start_ = Clock::now(); }

void EdgeMLMonitor::on_inf_stop(const Interpreter& interpreter) {
  const double latency_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - inf_start_)
          .count();
  current_.scalars[trace_keys::kInferenceLatencyMs] = latency_ms;
  current_.scalars[trace_keys::kPeakMemoryBytes] =
      static_cast<double>(AllocStats::instance().current_bytes());

  if (options_.log_model_io) {
    current_.tensors[trace_keys::kModelOutput] = interpreter.output(0).to_f32();
  }
  const Model& model = interpreter.model();
  if (options_.per_layer_outputs || options_.per_layer_latency) {
    for (const Node& n : model.nodes) {
      if (n.type == OpType::kInput) continue;
      if (options_.per_layer_outputs) {
        current_.layer_names.push_back(n.name);
        current_.layer_outputs.push_back(interpreter.node_output(n.id).to_f32());
        if (options_.per_layer_latency) {
          current_.layer_latency_ms.push_back(
              interpreter.last_stats().per_node_ms[static_cast<std::size_t>(n.id)]);
        }
      } else if (options_.per_layer_latency) {
        current_.layer_names.push_back(n.name);
        current_.layer_latency_ms.push_back(
            interpreter.last_stats().per_node_ms[static_cast<std::size_t>(n.id)]);
      }
    }
  }
}

void EdgeMLMonitor::on_sensor_start() { sensor_start_ = Clock::now(); }

void EdgeMLMonitor::on_sensor_stop() {
  current_.scalars[trace_keys::kSensorLatencyMs] =
      std::chrono::duration<double, std::milli>(Clock::now() - sensor_start_)
          .count();
}

void EdgeMLMonitor::log_tensor(const std::string& key, const Tensor& value) {
  current_.tensors[key] = value;
}

void EdgeMLMonitor::log_scalar(const std::string& key, double value) {
  current_.scalars[key] = value;
}

void EdgeMLMonitor::next_frame() {
  trace_.frames.push_back(std::move(current_));
  current_ = FrameTrace{};
  current_.frame_id = ++next_frame_id_;
}

Trace EdgeMLMonitor::take_trace() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  trace_.pipeline_name = out.pipeline_name;
  return out;
}

}  // namespace mlexray
