// EdgeMLMonitor: the instrumentation API (paper §3.2, Fig 7).
//
// Usage in an app's inference loop (the paper's <5-LoC instrumentation):
//
//   EdgeMLMonitor monitor(options);
//   ...
//   monitor.log_tensor(trace_keys::kSensorRaw, raw);   // custom logs
//   monitor.on_inf_start();
//   interpreter.invoke();
//   monitor.on_inf_stop(interpreter);                  // default logs
//   monitor.next_frame();
//
// on_inf_stop captures the default telemetry: model output, end-to-end
// inference latency, per-layer outputs/latencies (if enabled) and the
// runtime memory footprint. on_sensor_start/stop bracket sensor capture.
#pragma once

#include <chrono>

#include "src/core/trace.h"
#include "src/interpreter/interpreter.h"

namespace mlexray {

struct MonitorOptions {
  bool per_layer_outputs = false;  // offline validation mode (Tables 3/5)
  bool per_layer_latency = true;
  bool log_model_io = true;
};

class EdgeMLMonitor {
 public:
  explicit EdgeMLMonitor(MonitorOptions options = {});

  void on_inf_start();
  void on_inf_stop(const Interpreter& interpreter);
  void on_sensor_start();
  void on_sensor_stop();

  // Custom logs around user functions (preprocessing, postprocessing, ...).
  void log_tensor(const std::string& key, const Tensor& value);
  void log_scalar(const std::string& key, double value);

  // Finalizes the current frame and starts the next one.
  void next_frame();

  const Trace& trace() const { return trace_; }
  Trace take_trace();
  void set_pipeline_name(std::string name) { trace_.pipeline_name = std::move(name); }

 private:
  using Clock = std::chrono::steady_clock;
  MonitorOptions options_;
  Trace trace_;
  FrameTrace current_;
  Clock::time_point inf_start_{};
  Clock::time_point sensor_start_{};
  int next_frame_id_ = 0;
};

}  // namespace mlexray
