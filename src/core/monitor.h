// EdgeMLMonitor: the instrumentation API (paper §3.2, Fig 7).
//
// Usage in an app's inference loop (the paper's <5-LoC instrumentation):
//
//   EdgeMLMonitor monitor(options);
//   monitor.observe(session);                          // push-based capture
//   ...
//   monitor.log_tensor(trace_keys::kSensorRaw, raw);   // custom logs
//   monitor.on_inf_start();
//   session.invoke();
//   monitor.on_inf_stop(session);                      // default logs
//   monitor.next_frame();
//
// The monitor is a thin façade over TraceBuffer (src/core/trace_buffer.h):
// observe() attaches the buffer to the session as an InvokeObserver, so
// per-layer latencies/outputs and the model outputs are captured *during*
// invoke into pre-sized storage — no post-hoc model walk, no steady-state
// heap allocation. Monitors are per-session: many sessions serving one
// shared Model attach one monitor each, while the weights and prepared
// packing stay shared. Interpreter overloads keep the pre-Model/Session
// call sites compiling; they delegate to the interpreter's session. Call
// sites that skip observe() still work: on_inf_stop detects that no push
// capture happened and pulls the retained node outputs through the same
// storage.
//
// Lifetime: an observed session and its monitor are linked. Destroy the
// monitor first (it detaches itself), or detach explicitly with unobserve()
// if the session dies first — the pipelines in src/core/pipelines.cc do
// the latter in their destructors. For Engine-pooled sessions, unobserve()
// before releasing the lease (or keep monitor and lease on one thread):
// once released, the session may be re-leased by another thread, and a
// monitor still pointing at it would race that thread's observer writes.
//
// spool_to() streams finalized frames to a .mlxtrace file from a background
// thread (set_pipeline_name first — the name is written into the file
// header at open). In spool mode take_trace()/trace() stay empty.
#pragma once

#include <chrono>
#include <filesystem>

#include "src/core/trace_buffer.h"
#include "src/interpreter/interpreter.h"

namespace mlexray {

class EdgeMLMonitor {
 public:
  explicit EdgeMLMonitor(MonitorOptions options = {});
  ~EdgeMLMonitor();

  EdgeMLMonitor(const EdgeMLMonitor&) = delete;
  EdgeMLMonitor& operator=(const EdgeMLMonitor&) = delete;

  // Attaches this monitor's TraceBuffer to the session as its
  // InvokeObserver (push-based capture) and pre-sizes capture storage for
  // its model. Re-attaching to a different session detaches the first.
  void observe(Session& session);
  void observe(Interpreter& interpreter) { observe(interpreter.session()); }
  // Detaches if `session` is the one being observed; call before the
  // session is destroyed if it dies before the monitor.
  void unobserve(Session& session);
  void unobserve(Interpreter& interpreter) {
    unobserve(interpreter.session());
  }

  void on_inf_start();
  void on_inf_stop(const Session& session);
  void on_inf_stop(const Interpreter& interpreter) {
    on_inf_stop(interpreter.session());
  }
  void on_sensor_start();
  void on_sensor_stop();

  // Custom logs around user functions (preprocessing, postprocessing, ...).
  void log_tensor(const std::string& key, const Tensor& value);
  void log_scalar(const std::string& key, double value);

  // Finalizes the current frame and starts the next one.
  void next_frame();

  // Background .mlxtrace spooling (see TraceBuffer).
  void spool_to(const std::filesystem::path& path);
  std::size_t finish_spool();

  const Trace& trace() const { return buffer_.trace(); }
  Trace take_trace() { return buffer_.take_trace(); }
  void set_pipeline_name(std::string name) {
    buffer_.set_pipeline_name(std::move(name));
  }

  const TraceBuffer& buffer() const { return buffer_; }
  TraceBuffer& buffer() { return buffer_; }

 private:
  using Clock = std::chrono::steady_clock;
  void detach();

  TraceBuffer buffer_;
  Session* observed_ = nullptr;
  std::uint16_t key_latency_ = 0;
  std::uint16_t key_peak_memory_ = 0;
  std::uint16_t key_sensor_latency_ = 0;
  Clock::time_point inf_start_{};
  Clock::time_point sensor_start_{};
};

}  // namespace mlexray
