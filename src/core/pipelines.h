// Instrumented inference pipelines + data playback (paper §3.3).
//
// The same pipeline class plays both roles in the Fig-1 workflow:
//  - the "edge app": deployed model variant + possibly buggy preprocessing;
//  - the "reference pipeline": checkpoint model + the preprocessing the
//    training pipeline actually used (from the model's InputSpec).
// run_*_playback feeds identical sensor data through a pipeline and returns
// the EXray trace for offline validation.
//
// Pipelines are built on the Model/Session serving API: each pipeline
// prepares a private Model (or executes a caller-shared one) and runs a
// Session over it, with the monitor's TraceBuffer attached per-session.
#pragma once

#include "src/core/monitor.h"
#include "src/datasets/synth_image.h"
#include "src/datasets/synth_speech.h"
#include "src/preprocess/audio.h"
#include "src/preprocess/image.h"

namespace mlexray {

struct ClassificationPipelineOptions {
  // Either `graph`+`resolver` (the pipeline prepares its own Model) or
  // `model` (a caller-shared prepared Model; resolver/num_threads unused).
  const Graph* graph = nullptr;
  const OpResolver* resolver = nullptr;
  const Model* model = nullptr;
  ImagePipelineConfig preprocess;
  int num_threads = 1;
  EdgeMLMonitor* monitor = nullptr;  // optional
};

class ClassificationPipeline {
 public:
  // Attaches the monitor (if any) to the session as an InvokeObserver;
  // the destructor detaches it, so the monitor may outlive the pipeline.
  explicit ClassificationPipeline(ClassificationPipelineOptions options);
  ~ClassificationPipeline();

  // Sensor frame (u8 HWC RGB) -> predicted label, with instrumentation.
  int process_frame(const Tensor& sensor_u8);

  const Session& session() const { return session_; }

 private:
  ClassificationPipelineOptions options_;
  std::unique_ptr<Model> owned_model_;  // null when options.model was given
  Session session_;
};

struct SpeechPipelineOptions {
  const Graph* graph = nullptr;
  const OpResolver* resolver = nullptr;
  const Model* model = nullptr;  // caller-shared alternative to graph
  AudioPipelineConfig preprocess;
  int num_threads = 1;
  EdgeMLMonitor* monitor = nullptr;
};

class SpeechPipeline {
 public:
  explicit SpeechPipeline(SpeechPipelineOptions options);
  ~SpeechPipeline();
  int process_frame(const std::vector<float>& waveform);
  const Session& session() const { return session_; }

 private:
  SpeechPipelineOptions options_;
  std::unique_ptr<Model> owned_model_;
  Session session_;
};

// Plays a dataset through an instrumented pipeline; returns the trace.
// When spool_path is non-empty, frames are streamed to that .mlxtrace file
// by the monitor's background spooler instead of being retained — the
// returned Trace then carries the pipeline name but no frames.
Trace run_classification_playback(const Graph& graph,
                                  const OpResolver& resolver,
                                  const std::vector<SensorExample>& sensors,
                                  const ImagePipelineConfig& preprocess,
                                  const MonitorOptions& monitor_options,
                                  const std::string& pipeline_name,
                                  int num_threads = 1,
                                  const std::filesystem::path& spool_path = {});

// Reference playback: correct preprocessing straight from the model's
// InputSpec, reference kernels.
Trace run_reference_classification(const Graph& reference_graph,
                                   const std::vector<SensorExample>& sensors,
                                   const MonitorOptions& monitor_options);

Trace run_speech_playback(const Graph& graph, const OpResolver& resolver,
                          const std::vector<SpeechExample>& waves,
                          const AudioPipelineConfig& preprocess,
                          const MonitorOptions& monitor_options,
                          const std::string& pipeline_name);

// Accuracy of a playback trace against dataset labels.
double trace_accuracy(const Trace& trace, const std::vector<int>& labels);

}  // namespace mlexray
