#include "src/core/validation.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/common/string_util.h"
#include "src/core/pipelines.h"
#include "src/drift/aggregator.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {

AccuracyReport DeploymentValidator::validate_accuracy(
    const Trace& edge, const Trace& reference, const std::vector<int>& labels,
    double tolerance) const {
  AccuracyReport r;
  r.edge_accuracy = trace_accuracy(edge, labels);
  r.reference_accuracy = trace_accuracy(reference, labels);
  r.drop = r.reference_accuracy - r.edge_accuracy;
  r.degraded = r.drop > tolerance;
  return r;
}

PerLayerReport DeploymentValidator::per_layer_drift(const Trace& edge,
                                                    const Trace& reference,
                                                    ErrorMetric metric,
                                                    double threshold) const {
  MLX_CHECK_EQ(edge.frames.size(), reference.frames.size())
      << "traces must replay the same frames";
  PerLayerReport report;
  report.threshold = threshold;
  if (edge.frames.empty()) return report;
  // Traces recorded without per-layer outputs (latency-only monitoring)
  // yield an empty drift report rather than an error.
  if (edge.frames[0].layer_outputs.empty() ||
      reference.frames[0].layer_outputs.empty()) {
    return report;
  }

  // Reference layer lookup by name (same for all frames).
  std::map<std::string, std::size_t> ref_index;
  const FrameTrace& ref0 = reference.frames[0];
  for (std::size_t i = 0; i < ref0.layer_names.size(); ++i) {
    ref_index[ref0.layer_names[i]] = i;
  }

  const FrameTrace& edge0 = edge.frames[0];
  for (std::size_t li = 0; li < edge0.layer_names.size(); ++li) {
    const std::string& name = edge0.layer_names[li];
    auto it = ref_index.find(name);
    if (it == ref_index.end()) continue;  // e.g. Quantize/Dequantize nodes
    double sum = 0.0;
    for (std::size_t f = 0; f < edge.frames.size(); ++f) {
      // Traces capture layer outputs in their raw dtype (quantized layers
      // stay int8 on the device); every error metric dequantizes via
      // Tensor::to_f32 internally — this is the offline read path.
      const Tensor& e = edge.frames[f].layer_outputs.at(li);
      const Tensor& r = reference.frames[f].layer_outputs.at(it->second);
      double err = 0.0;
      switch (metric) {
        case ErrorMetric::kNormalizedRmse: err = normalized_rmse(e, r); break;
        case ErrorMetric::kLinf: err = linf_error(e, r); break;
        case ErrorMetric::kCosine: err = cosine_distance(e, r); break;
      }
      sum += err;
    }
    LayerDrift drift;
    drift.layer = name;
    drift.error = sum / static_cast<double>(edge.frames.size());
    drift.suspect = drift.error > threshold;
    if (drift.suspect && !report.first_suspect.has_value()) {
      report.first_suspect = name;
    }
    report.drifts.push_back(std::move(drift));
  }
  return report;
}

PerLayerReport DeploymentValidator::per_layer_digest_drift(
    const Trace& edge, const Trace& reference, double threshold) const {
  PerLayerReport report;
  report.threshold = threshold;

  // Merge each side's per-layer digests across frames (digest frames as-is,
  // raw per-layer frames digested on the fly), keyed by layer name.
  const auto merge_trace = [](const Trace& trace,
                              std::vector<std::string>* order) {
    std::map<std::string, LayerDigest> merged;
    for (const FrameTrace& frame : trace.frames) {
      const std::vector<LayerDigest> digests = frame_layer_digests(frame);
      if (order->empty() && !digests.empty()) *order = frame.layer_names;
      for (std::size_t i = 0; i < digests.size(); ++i) {
        auto [it, inserted] = merged.try_emplace(frame.layer_names[i]);
        if (inserted) {
          it->second = digests[i];
        } else {
          it->second.merge(digests[i]);
        }
      }
    }
    return merged;
  };
  std::vector<std::string> edge_order;
  std::vector<std::string> ref_order;
  const std::map<std::string, LayerDigest> edge_merged =
      merge_trace(edge, &edge_order);
  const std::map<std::string, LayerDigest> ref_merged =
      merge_trace(reference, &ref_order);

  for (const std::string& name : edge_order) {
    const auto eit = edge_merged.find(name);
    const auto rit = ref_merged.find(name);
    if (eit == edge_merged.end() || rit == ref_merged.end()) continue;
    LayerDrift drift;
    drift.layer = name;
    drift.error = digest_drift(eit->second, rit->second);
    drift.suspect = drift.error > threshold;
    if (drift.suspect && !report.first_suspect.has_value()) {
      report.first_suspect = name;
    }
    report.drifts.push_back(std::move(drift));
  }
  return report;
}

LatencyReport DeploymentValidator::per_layer_latency(
    const Trace& trace, double straggler_factor) const {
  LatencyReport report;
  if (trace.frames.empty()) return report;
  const FrameTrace& f0 = trace.frames[0];
  MLX_CHECK_EQ(f0.layer_names.size(), f0.layer_latency_ms.size())
      << "trace lacks per-layer latency";
  std::vector<double> means(f0.layer_names.size(), 0.0);
  for (const FrameTrace& f : trace.frames) {
    for (std::size_t i = 0; i < means.size(); ++i) {
      means[i] += f.layer_latency_ms.at(i);
    }
  }
  std::vector<double> sorted;
  for (std::size_t i = 0; i < means.size(); ++i) {
    means[i] /= static_cast<double>(trace.frames.size());
    report.total_ms += means[i];
    sorted.push_back(means[i]);
  }
  std::sort(sorted.begin(), sorted.end());
  report.median_ms = sorted[sorted.size() / 2];
  for (std::size_t i = 0; i < means.size(); ++i) {
    LayerLatency l;
    l.layer = f0.layer_names[i];
    l.mean_ms = means[i];
    l.straggler = report.median_ms > 0.0 &&
                  means[i] > straggler_factor * report.median_ms;
    report.layers.push_back(std::move(l));
  }
  return report;
}

void DeploymentValidator::add_assertion(const std::string& name,
                                        AssertionFn fn) {
  assertions_.emplace_back(name, std::move(fn));
}

std::vector<AssertionResult> DeploymentValidator::run_assertions(
    const Trace& edge, const Trace& reference) const {
  std::vector<AssertionResult> results;
  results.reserve(assertions_.size());
  for (const auto& [name, fn] : assertions_) {
    AssertionResult r = fn(edge, reference);
    r.name = name;
    results.push_back(std::move(r));
  }
  return results;
}

std::string DeploymentValidator::report(
    const AccuracyReport& accuracy, const PerLayerReport& layers,
    const std::vector<AssertionResult>& assertions) const {
  std::ostringstream out;
  out << "=== ML-EXray deployment validation report ===\n";
  out << "accuracy: edge " << format_float(accuracy.edge_accuracy * 100, 1)
      << "% vs reference "
      << format_float(accuracy.reference_accuracy * 100, 1) << "% ("
      << (accuracy.degraded ? "DEGRADED" : "ok") << ")\n";
  if (layers.first_suspect.has_value()) {
    out << "per-layer drift: first suspect layer '" << *layers.first_suspect
        << "' (threshold " << format_float(layers.threshold, 3) << ")\n";
  } else if (!layers.drifts.empty()) {
    out << "per-layer drift: no layer above threshold\n";
  }
  for (const AssertionResult& a : assertions) {
    out << "assertion [" << a.name << "]: "
        << (a.triggered ? "TRIGGERED - " + a.message : "pass") << "\n";
  }
  return out.str();
}

}  // namespace mlexray
