#include "src/core/trace.h"

#include "src/common/file_io.h"
#include "src/graph/serialization.h"

namespace mlexray {

namespace trace_keys {
std::string model_output_key(int output_index) {
  if (output_index == 0) return kModelOutput;
  return std::string(kModelOutput) + ":" + std::to_string(output_index);
}
}  // namespace trace_keys

const Tensor& FrameTrace::tensor(const std::string& key) const {
  auto it = tensors.find(key);
  MLX_CHECK(it != tensors.end()) << "trace has no tensor '" << key << "'";
  return it->second;
}

double FrameTrace::scalar(const std::string& key) const {
  auto it = scalars.find(key);
  MLX_CHECK(it != scalars.end()) << "trace has no scalar '" << key << "'";
  return it->second;
}

namespace {
// One magic per wire version: v2 frames append a digest section, so a
// reader must know the layout before parsing any frame. The magic is the
// version announcement (a version field after a shared magic would have cost
// the same four bytes without staying v1-readable).
constexpr std::uint32_t kTraceMagicV1 = 0x4d4c5854;  // "TXLM"
constexpr std::uint32_t kTraceMagicV2 = 0x4d4c5855;

std::uint32_t magic_for_version(int version) {
  return version >= kTraceVersion2 ? kTraceMagicV2 : kTraceMagicV1;
}

int version_for_magic(std::uint32_t magic) {
  if (magic == kTraceMagicV1) return kTraceVersion1;
  if (magic == kTraceMagicV2) return kTraceVersion2;
  MLX_CHECK(false) << "not an mlxtrace file";
  return 0;
}
}  // namespace

void serialize_frame(BinaryWriter& w, const FrameTrace& f, int version) {
  w.write_i32(f.frame_id);
  w.write_u32(static_cast<std::uint32_t>(f.tensors.size()));
  for (const auto& [key, tensor] : f.tensors) {
    w.write_string(key);
    serialize_tensor(w, tensor);
  }
  w.write_u32(static_cast<std::uint32_t>(f.scalars.size()));
  for (const auto& [key, value] : f.scalars) {
    w.write_string(key);
    w.write_f64(value);
  }
  w.write_u32(static_cast<std::uint32_t>(f.layer_names.size()));
  for (const std::string& name : f.layer_names) w.write_string(name);
  w.write_u32(static_cast<std::uint32_t>(f.layer_outputs.size()));
  for (const Tensor& t : f.layer_outputs) serialize_tensor(w, t);
  w.write_u32(static_cast<std::uint32_t>(f.layer_latency_ms.size()));
  for (double v : f.layer_latency_ms) w.write_f64(v);
  if (version >= kTraceVersion2) {
    w.write_u32(static_cast<std::uint32_t>(f.layer_digests.size()));
    for (const LayerDigest& d : f.layer_digests) serialize_digest(w, d);
  } else {
    MLX_CHECK(f.layer_digests.empty())
        << "trace format v1 cannot carry layer digests";
  }
}

FrameTrace deserialize_frame(BinaryReader& r, int version) {
  FrameTrace f;
  f.frame_id = r.read_i32();
  std::uint32_t tensors = r.read_u32();
  for (std::uint32_t k = 0; k < tensors; ++k) {
    std::string key = r.read_string();
    f.tensors.emplace(std::move(key), deserialize_tensor(r));
  }
  std::uint32_t scalars = r.read_u32();
  for (std::uint32_t k = 0; k < scalars; ++k) {
    std::string key = r.read_string();
    f.scalars.emplace(std::move(key), r.read_f64());
  }
  std::uint32_t names = r.read_u32();
  for (std::uint32_t k = 0; k < names; ++k) {
    f.layer_names.push_back(r.read_string());
  }
  std::uint32_t outputs = r.read_u32();
  for (std::uint32_t k = 0; k < outputs; ++k) {
    f.layer_outputs.push_back(deserialize_tensor(r));
  }
  std::uint32_t latencies = r.read_u32();
  for (std::uint32_t k = 0; k < latencies; ++k) {
    f.layer_latency_ms.push_back(r.read_f64());
  }
  if (version >= kTraceVersion2) {
    std::uint32_t digests = r.read_u32();
    for (std::uint32_t k = 0; k < digests; ++k) {
      f.layer_digests.push_back(deserialize_digest(r));
    }
  }
  return f;
}

std::size_t trace_frame_count_offset(const std::string& pipeline_name) {
  BinaryWriter w;
  w.write_u32(kTraceMagicV2);
  w.write_string(pipeline_name);
  return w.size();
}

std::vector<std::uint8_t> serialize_trace(const Trace& trace) {
  BinaryWriter w;
  w.write_u32(magic_for_version(kTraceVersionCurrent));
  w.write_string(trace.pipeline_name);
  w.write_u32(static_cast<std::uint32_t>(trace.frames.size()));
  for (const FrameTrace& f : trace.frames) {
    serialize_frame(w, f, kTraceVersionCurrent);
  }
  return w.bytes();
}

Trace deserialize_trace(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  const int version = version_for_magic(r.read_u32());
  Trace trace;
  trace.pipeline_name = r.read_string();
  std::uint32_t frames = r.read_u32();
  trace.frames.reserve(frames);
  for (std::uint32_t i = 0; i < frames; ++i) {
    trace.frames.push_back(deserialize_frame(r, version));
  }
  return trace;
}

std::size_t Trace::serialized_bytes() const {
  return serialize_trace(*this).size();
}

void save_trace(const Trace& trace, const std::filesystem::path& path) {
  write_file(path, serialize_trace(trace));
}

Trace load_trace(const std::filesystem::path& path) {
  return deserialize_trace(read_file(path));
}

Trace load_trace_tolerant(const std::filesystem::path& path,
                          std::size_t* truncated_frames) {
  BinaryReader r(read_file(path));
  const int version = version_for_magic(r.read_u32());
  Trace trace;
  trace.pipeline_name = r.read_string();
  const std::uint32_t promised = r.read_u32();
  trace.frames.reserve(promised);
  std::size_t truncated = 0;
  for (std::uint32_t i = 0; i < promised; ++i) {
    // A torn tail frame (killed writer) fails its bounds-checked reads;
    // everything parsed before it is a valid prefix. Deserialization
    // happens into a scratch frame so a partial parse never reaches the
    // returned trace.
    try {
      trace.frames.push_back(deserialize_frame(r, version));
    } catch (const MlxError&) {
      truncated = promised - i;
      break;
    }
  }
  if (truncated_frames != nullptr) *truncated_frames = truncated;
  return trace;
}

}  // namespace mlexray
