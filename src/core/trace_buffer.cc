#include "src/core/trace_buffer.h"

#include <cstring>

#include "src/common/fault_injection.h"
#include "src/common/file_io.h"
#include "src/graph/serialization.h"
#include "src/interpreter/interpreter.h"

namespace mlexray {

namespace {
// Reserved capacity for scalar entries per frame; grows (once, with
// persistent capacity) only if a pipeline logs more custom scalars.
constexpr std::size_t kScalarReserve = 16;
}  // namespace

TraceBuffer::TraceBuffer(MonitorOptions options) : options_(options) {
  // Canonical keys get the low ids so hot-path capture never interns.
  key_latency_ = intern_key(trace_keys::kInferenceLatencyMs);
  key_model_outputs_.push_back(intern_key(trace_keys::kModelOutput));
  intern_key(trace_keys::kPeakMemoryBytes);
  intern_key(trace_keys::kSensorLatencyMs);
  frames_.resize(2);
  for (CaptureFrame& f : frames_) f.scalars.reserve(kScalarReserve);
}

TraceBuffer::~TraceBuffer() {
  if (spooling()) {
    try {
      close_spool();
    } catch (const MlxError&) {
      // Destructor must not throw; close_spool() reports IO errors when
      // called explicitly.
    }
  }
}

void TraceBuffer::size_frame(CaptureFrame& f) const {
  if (f.scalars.capacity() < kScalarReserve) f.scalars.reserve(kScalarReserve);
  f.layer_latency_ms.assign(layers_.size(), 0.0);
  if (options_.per_layer_outputs) {
    f.layer_bytes.resize(layers_.size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      f.layer_bytes[i].resize(layers_[i].byte_size);
    }
  }
  if (options_.per_layer_digests) {
    // LayerDigest is all-inline storage, so sizing once here is the last
    // allocation the digest path ever performs; per-frame reset() is a
    // member-wise clear (memset-class, not an allocation).
    f.layer_digests.resize(layers_.size());
    for (LayerDigest& d : f.layer_digests) d.reset();
  }
  f.has_invoke = false;
}

void TraceBuffer::bind(const Session& session) {
  if (bound_ == &session) return;
  // bind() resizes every capture frame and rebuilds the layer layout, which
  // the spooler thread reads while serializing: once any frame has been
  // finalized into the spool, binding would race with it. Bind (observe)
  // before recording frames when spooling.
  MLX_CHECK(!spooling() || spool_enqueued_ == 0)
      << "cannot (re)bind a TraceBuffer after frames were spooled";
  bound_ = &session;
  layers_.clear();
  const auto& steps = session.plan().steps();
  layers_.reserve(steps.size());
  for (const PlanStep& step : steps) {
    LayerInfo info;
    info.node_id = step.node->id;
    info.name = step.node->name;
    const Tensor& out = session.node_output(step.node->id);
    info.dtype = out.dtype();
    info.shape = out.shape();
    info.quant = out.quant();
    info.byte_size = out.byte_size();
    layers_.push_back(std::move(info));
  }
  // Model-io mode captures every model output; intern the extra keys here so
  // multi-output capture stays allocation-free on the hot path.
  const auto output_count = session.graph().outputs.size();
  while (key_model_outputs_.size() < output_count) {
    key_model_outputs_.push_back(intern_key(trace_keys::model_output_key(
        static_cast<int>(key_model_outputs_.size()))));
  }
  if (key_model_outputs_.size() > output_count) {
    key_model_outputs_.resize(output_count);
  }
  for (CaptureFrame& f : frames_) size_frame(f);
  step_cursor_ = 0;
}

void TraceBuffer::bind(const Interpreter& interpreter) {
  bind(interpreter.session());
}

bool TraceBuffer::bound_to(const Interpreter& interpreter) const {
  return bound_ == &interpreter.session();
}

std::uint16_t TraceBuffer::intern_key(const std::string& key) {
  std::lock_guard<std::mutex> lock(key_mu_);
  auto it = key_ids_.find(key);
  if (it != key_ids_.end()) return it->second;
  MLX_CHECK_LT(key_names_.size(), 65536u) << "trace key table overflow";
  auto id = static_cast<std::uint16_t>(key_names_.size());
  key_names_.push_back(key);
  key_ids_.emplace(key, id);
  return id;
}

std::string TraceBuffer::key_name(std::uint16_t id) const {
  std::lock_guard<std::mutex> lock(key_mu_);
  MLX_CHECK_LT(static_cast<std::size_t>(id), key_names_.size());
  return key_names_[id];
}

void TraceBuffer::set_scalar(std::uint16_t key_id, double value) {
  CaptureFrame& f = frames_[active_];
  for (auto& [id, v] : f.scalars) {
    if (id == key_id) {
      v = value;
      return;
    }
  }
  f.scalars.emplace_back(key_id, value);
}

void TraceBuffer::log_tensor(std::uint16_t key_id, const Tensor& value) {
  CaptureFrame& f = frames_[active_];
  TensorSlot* slot = nullptr;
  for (TensorSlot& s : f.tensors) {
    if (s.key == key_id) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    f.tensors.emplace_back();
    slot = &f.tensors.back();
    slot->key = key_id;
  }
  slot->used = true;
  slot->dtype = value.dtype();
  slot->shape = value.shape();
  // vector copy-assignment reuses capacity when it suffices — steady-state
  // logging of a same-shaped tensor under the same key allocates nothing.
  slot->quant = value.quant();
  slot->bytes.resize(value.byte_size());
  std::memcpy(slot->bytes.data(), value.raw_data(), value.byte_size());
}

void TraceBuffer::on_invoke_begin(std::size_t step_count) {
  MLX_CHECK_EQ(step_count, layers_.size())
      << "TraceBuffer observing a session it was not bound to";
  step_cursor_ = 0;
}

void TraceBuffer::on_step(const Node& node, const Tensor& output,
                          double latency_ms) {
  CaptureFrame& f = frames_[active_];
  MLX_CHECK_LT(step_cursor_, layers_.size());
  MLX_CHECK_EQ(layers_[step_cursor_].node_id, node.id);
  if (options_.per_layer_latency) {
    f.layer_latency_ms[step_cursor_] = latency_ms;
  }
  if (options_.per_layer_outputs) {
    std::vector<std::uint8_t>& dst = f.layer_bytes[step_cursor_];
    MLX_CHECK_EQ(dst.size(), output.byte_size());
    std::memcpy(dst.data(), output.raw_data(), output.byte_size());
  }
  if (options_.per_layer_digests) {
    LayerDigest& d = f.layer_digests[step_cursor_];
    d.reset();
    d.accumulate(output);
  }
  ++step_cursor_;
}

void TraceBuffer::on_invoke_end(const SessionStats& stats) {
  CaptureFrame& f = frames_[active_];
  f.has_invoke = true;
  set_scalar(key_latency_, stats.total_ms);
  if (options_.log_model_io && bound_ != nullptr) {
    // Every model output, not just output(0): multi-head models (SSD box +
    // class heads) log one tensor per head.
    for (std::size_t i = 0; i < key_model_outputs_.size(); ++i) {
      log_tensor(key_model_outputs_[i], bound_->output(static_cast<int>(i)));
    }
  }
}

void TraceBuffer::capture_pull(const Session& session) {
  bind(session);
  const SessionStats& stats = session.last_stats();
  on_invoke_begin(layers_.size());
  for (const PlanStep& step : session.plan().steps()) {
    const auto id = static_cast<std::size_t>(step.node->id);
    on_step(*step.node, session.node_output(step.node->id),
            stats.per_node_ms[id]);
  }
  on_invoke_end(stats);
}

void TraceBuffer::capture_pull(const Interpreter& interpreter) {
  capture_pull(interpreter.session());
}

void TraceBuffer::reset_frame(CaptureFrame& frame, int frame_id) {
  frame.frame_id = frame_id;
  frame.has_invoke = false;
  frame.scalars.clear();  // capacity persists
  for (TensorSlot& s : frame.tensors) s.used = false;
  // layer_latency_ms / layer_bytes are overwritten wholesale by the next
  // capture; no clearing needed.
}

FrameTrace TraceBuffer::to_frame_trace(const CaptureFrame& frame) const {
  FrameTrace out;
  out.frame_id = frame.frame_id;
  for (const auto& [id, value] : frame.scalars) {
    out.scalars[key_name(id)] = value;
  }
  for (const TensorSlot& s : frame.tensors) {
    if (!s.used) continue;
    Tensor t(s.dtype, s.shape);
    MLX_CHECK_EQ(t.byte_size(), s.bytes.size());
    std::memcpy(t.raw_data(), s.bytes.data(), s.bytes.size());
    t.quant() = s.quant;
    out.tensors.emplace(key_name(s.key), std::move(t));
  }
  if (frame.has_invoke &&
      (options_.per_layer_latency || options_.per_layer_outputs ||
       options_.per_layer_digests)) {
    out.layer_names.reserve(layers_.size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      out.layer_names.push_back(layers_[i].name);
      if (options_.per_layer_outputs) {
        Tensor t(layers_[i].dtype, layers_[i].shape);
        MLX_CHECK_EQ(t.byte_size(), frame.layer_bytes[i].size());
        std::memcpy(t.raw_data(), frame.layer_bytes[i].data(),
                    frame.layer_bytes[i].size());
        t.quant() = layers_[i].quant;
        out.layer_outputs.push_back(std::move(t));
      }
      if (options_.per_layer_latency) {
        out.layer_latency_ms.push_back(frame.layer_latency_ms[i]);
      }
      if (options_.per_layer_digests) {
        out.layer_digests.push_back(frame.layer_digests[i]);
      }
    }
  }
  return out;
}

void TraceBuffer::next_frame() {
  CaptureFrame& finished = frames_[active_];
  ++frames_captured_;
  if (spooling()) {
    ++spool_enqueued_;
    spool_enqueue(&finished);
    active_ = (active_ + 1) % static_cast<int>(frames_.size());
    spool_wait_free(&frames_[active_]);
  } else {
    if (options_.retain_frames) {
      trace_.frames.push_back(to_frame_trace(finished));
    }
    active_ = (active_ + 1) % static_cast<int>(frames_.size());
  }
  reset_frame(frames_[active_], ++next_frame_id_);
}

std::size_t TraceBuffer::frame_capture_bytes() const {
  std::size_t total = 0;
  if (options_.per_layer_outputs) {
    for (const LayerInfo& l : layers_) total += l.byte_size;
  }
  if (options_.per_layer_digests) {
    total += layers_.size() * sizeof(LayerDigest);
  }
  // Warm slot capacity — what a full frame captures — so the number is
  // meaningful right after next_frame() reset the active frame.
  for (const TensorSlot& s : frames_[active_].tensors) total += s.bytes.size();
  return total;
}

std::size_t TraceBuffer::max_spool_batch() const {
  std::lock_guard<std::mutex> lock(spool_mu_);
  return max_spool_batch_;
}

std::size_t TraceBuffer::spooled_frames() const {
  std::lock_guard<std::mutex> lock(spool_mu_);
  return spool_frames_;
}

std::size_t TraceBuffer::spooled_digest_frames() const {
  std::lock_guard<std::mutex> lock(spool_mu_);
  return spool_digest_frames_;
}

Trace TraceBuffer::take_trace() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  trace_.pipeline_name = out.pipeline_name;
  return out;
}

void TraceBuffer::set_pipeline_name(std::string name) {
  trace_.pipeline_name = std::move(name);
}

// --- spooling ---------------------------------------------------------------

void TraceBuffer::open_spool(const std::filesystem::path& path) {
  MLX_CHECK(!spooling()) << "spool already open";
  spool_out_.open(path, std::ios::binary | std::ios::trunc);
  MLX_CHECK(spool_out_.good()) << "cannot open spool file " << path.string();
  // Widen the capture ring so several completed frames can queue behind the
  // writer (the batching that amortizes one write over many frames). Done
  // before any frame is enqueued, so growing the vector is safe.
  const auto ring = static_cast<std::size_t>(
      options_.spool_queue_frames < 2 ? 2 : options_.spool_queue_frames);
  while (frames_.size() < ring) {
    frames_.emplace_back();
    size_frame(frames_.back());
  }
  spool_queue_.reserve(frames_.size());
  spool_batch_.reserve(frames_.size());
  // Same header save_trace writes; the frame count starts at 0 and is
  // re-patched after every batch write (crash safety) and at close_spool().
  BinaryWriter header;
  {
    Trace empty;
    empty.pipeline_name = trace_.pipeline_name;
    const std::vector<std::uint8_t> bytes = serialize_trace(empty);
    header.write_bytes(bytes.data(), bytes.size());
  }
  spool_count_offset_ = trace_frame_count_offset(trace_.pipeline_name);
  spool_out_.write(reinterpret_cast<const char*>(header.bytes().data()),
                   static_cast<std::streamsize>(header.size()));
  spool_frames_ = 0;
  spool_digest_frames_ = 0;
  spool_enqueued_ = 0;
  spool_stop_ = false;
  max_spool_batch_ = 0;
  spool_error_.clear();
  spool_thread_ = std::thread([this] { spool_worker(); });
}

bool TraceBuffer::spool_holds(const CaptureFrame* frame) const {
  for (const CaptureFrame* f : spool_queue_) {
    if (f == frame) return true;
  }
  for (const CaptureFrame* f : spool_batch_) {
    if (f == frame) return true;
  }
  return false;
}

void TraceBuffer::spool_enqueue(const CaptureFrame* frame) {
  std::lock_guard<std::mutex> lock(spool_mu_);
  // Every ring frame appears at most once across queue + batch and capacity
  // was reserved for the whole ring, so this push never allocates.
  spool_queue_.push_back(frame);
  spool_cv_.notify_all();
}

void TraceBuffer::spool_wait_free(const CaptureFrame* frame) {
  std::unique_lock<std::mutex> lock(spool_mu_);
  spool_cv_.wait(lock, [this, frame] { return !spool_holds(frame); });
}

void TraceBuffer::spool_worker() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(spool_mu_);
      spool_cv_.wait(lock,
                     [this] { return !spool_queue_.empty() || spool_stop_; });
      if (spool_queue_.empty()) return;  // stop requested, queue drained
      // Take every queued frame at once — the batch that turns N frames
      // into one write() below. swap keeps both vectors' capacity.
      spool_queue_.swap(spool_batch_);
      if (spool_batch_.size() > max_spool_batch_) {
        max_spool_batch_ = spool_batch_.size();
      }
    }
    try {
      if (fault::enabled()) fault::check(fault_sites::kSpoolWrite);
      BinaryWriter w;
      for (const CaptureFrame* frame : spool_batch_) {
        serialize_frame(w, to_frame_trace(*frame));
      }
      spool_out_.write(reinterpret_cast<const char*>(w.bytes().data()),
                       static_cast<std::streamsize>(w.size()));
      MLX_CHECK(spool_out_.good()) << "spool write failed";
      // Crash safety: re-patch the header's frame count after every batch
      // (one small extra write per wakeup) and flush, so a killed process
      // leaves a readable .mlxtrace holding every fully-written frame —
      // only a torn tail frame is possible, and load_trace_tolerant drops
      // it. Without this the count would say 0 until close_spool().
      const std::streamoff end = spool_out_.tellp();
      BinaryWriter count;
      count.write_u32(
          static_cast<std::uint32_t>(spool_frames_ + spool_batch_.size()));
      spool_out_.seekp(static_cast<std::streamoff>(spool_count_offset_));
      spool_out_.write(reinterpret_cast<const char*>(count.bytes().data()),
                       static_cast<std::streamsize>(count.size()));
      spool_out_.seekp(end);
      spool_out_.flush();
      MLX_CHECK(spool_out_.good()) << "spool header patch failed";
      std::size_t digest_frames = 0;
      if (options_.per_layer_digests) {
        for (const CaptureFrame* frame : spool_batch_) {
          if (frame->has_invoke) ++digest_frames;
        }
      }
      std::lock_guard<std::mutex> lock(spool_mu_);
      spool_frames_ += spool_batch_.size();
      spool_digest_frames_ += digest_frames;
    } catch (const std::exception& e) {
      // Any escape (MlxError, bad_alloc, ...) would std::terminate the
      // process from a thread entry; record it for close_spool() instead.
      std::lock_guard<std::mutex> lock(spool_mu_);
      if (spool_error_.empty()) spool_error_ = e.what();
    } catch (...) {
      std::lock_guard<std::mutex> lock(spool_mu_);
      if (spool_error_.empty()) spool_error_ = "unknown spooler exception";
    }
    {
      // Even on a write error the batch frames are released, so the hot
      // thread never deadlocks waiting for a free buffer; the error is
      // surfaced at close_spool().
      std::lock_guard<std::mutex> lock(spool_mu_);
      spool_batch_.clear();
      spool_cv_.notify_all();
    }
  }
}

std::size_t TraceBuffer::close_spool() {
  MLX_CHECK(spooling()) << "no spool open";
  {
    std::lock_guard<std::mutex> lock(spool_mu_);
    spool_stop_ = true;
    spool_cv_.notify_all();
  }
  spool_thread_.join();
  // Patch the frame count into the header.
  BinaryWriter count;
  count.write_u32(static_cast<std::uint32_t>(spool_frames_));
  spool_out_.seekp(static_cast<std::streamoff>(spool_count_offset_));
  spool_out_.write(reinterpret_cast<const char*>(count.bytes().data()),
                   static_cast<std::streamsize>(count.size()));
  spool_out_.close();
  MLX_CHECK(spool_error_.empty()) << "spooler failed: " << spool_error_;
  return spool_frames_;
}

}  // namespace mlexray
