#include "src/core/pipelines.h"

#include "src/train/train_loop.h"

namespace mlexray {

namespace {
// Pipelines execute a caller-shared prepared Model when one is given;
// otherwise they prepare their own from the graph + resolver.
std::unique_ptr<Model> maybe_build_model(const Graph* graph,
                                         const OpResolver* resolver,
                                         const Model* shared,
                                         int num_threads) {
  if (shared != nullptr) return nullptr;
  return std::make_unique<Model>(graph, resolver, num_threads);
}
}  // namespace

ClassificationPipeline::ClassificationPipeline(
    ClassificationPipelineOptions options)
    : options_(options),
      owned_model_(maybe_build_model(options.graph, options.resolver,
                                     options.model, options.num_threads)),
      session_(options.model != nullptr ? options.model : owned_model_.get()) {
  // Push-based capture: per-layer telemetry is recorded during invoke by
  // the monitor's TraceBuffer instead of a post-hoc model walk.
  if (options_.monitor != nullptr) options_.monitor->observe(session_);
}

ClassificationPipeline::~ClassificationPipeline() {
  // If the monitor died first its destructor already detached and cleared
  // the session's observer — only call back into it while its buffer is
  // still attached, so either destruction order is safe.
  if (options_.monitor != nullptr && session_.observer() != nullptr) {
    options_.monitor->unobserve(session_);
  }
}

int ClassificationPipeline::process_frame(const Tensor& sensor_u8) {
  EdgeMLMonitor* mon = options_.monitor;
  if (mon != nullptr) mon->log_tensor(trace_keys::kSensorRaw, sensor_u8);

  Tensor input = run_image_pipeline(sensor_u8, options_.preprocess);
  if (mon != nullptr) {
    mon->log_tensor(trace_keys::kPreprocessOut, input);
    mon->log_tensor(trace_keys::kModelInput, input);
  }

  session_.set_input(0, input);
  if (mon != nullptr) mon->on_inf_start();
  session_.invoke();
  if (mon != nullptr) mon->on_inf_stop(session_);

  int predicted = argmax(session_.output(0));
  if (mon != nullptr) {
    mon->log_scalar(trace_keys::kPredictedLabel, predicted);
    mon->next_frame();
  }
  return predicted;
}

SpeechPipeline::SpeechPipeline(SpeechPipelineOptions options)
    : options_(options),
      owned_model_(maybe_build_model(options.graph, options.resolver,
                                     options.model, options.num_threads)),
      session_(options.model != nullptr ? options.model : owned_model_.get()) {
  if (options_.monitor != nullptr) options_.monitor->observe(session_);
}

SpeechPipeline::~SpeechPipeline() {
  if (options_.monitor != nullptr && session_.observer() != nullptr) {
    options_.monitor->unobserve(session_);
  }
}

int SpeechPipeline::process_frame(const std::vector<float>& waveform) {
  EdgeMLMonitor* mon = options_.monitor;
  Tensor input = run_audio_pipeline(waveform, options_.preprocess);
  if (mon != nullptr) {
    mon->log_tensor(trace_keys::kPreprocessOut, input);
    mon->log_tensor(trace_keys::kModelInput, input);
  }
  session_.set_input(0, input);
  if (mon != nullptr) mon->on_inf_start();
  session_.invoke();
  if (mon != nullptr) mon->on_inf_stop(session_);
  int predicted = argmax(session_.output(0));
  if (mon != nullptr) {
    mon->log_scalar(trace_keys::kPredictedLabel, predicted);
    mon->next_frame();
  }
  return predicted;
}

Trace run_classification_playback(const Graph& graph,
                                  const OpResolver& resolver,
                                  const std::vector<SensorExample>& sensors,
                                  const ImagePipelineConfig& preprocess,
                                  const MonitorOptions& monitor_options,
                                  const std::string& pipeline_name,
                                  int num_threads,
                                  const std::filesystem::path& spool_path) {
  EdgeMLMonitor monitor(monitor_options);
  monitor.set_pipeline_name(pipeline_name);
  if (!spool_path.empty()) monitor.spool_to(spool_path);
  ClassificationPipelineOptions opts;
  opts.graph = &graph;
  opts.resolver = &resolver;
  opts.preprocess = preprocess;
  opts.num_threads = num_threads;
  opts.monitor = &monitor;
  ClassificationPipeline pipeline(opts);
  for (const SensorExample& s : sensors) {
    pipeline.process_frame(s.image_u8);
  }
  if (!spool_path.empty()) monitor.finish_spool();
  return monitor.take_trace();
}

Trace run_reference_classification(const Graph& reference_graph,
                                   const std::vector<SensorExample>& sensors,
                                   const MonitorOptions& monitor_options) {
  static const RefOpResolver kRefResolver{};  // correct reference kernels
  ImagePipelineConfig correct{reference_graph.input_spec, PreprocBug::kNone};
  return run_classification_playback(reference_graph, kRefResolver, sensors,
                                     correct, monitor_options,
                                     reference_graph.name + "(reference)");
}

Trace run_speech_playback(const Graph& graph, const OpResolver& resolver,
                          const std::vector<SpeechExample>& waves,
                          const AudioPipelineConfig& preprocess,
                          const MonitorOptions& monitor_options,
                          const std::string& pipeline_name) {
  EdgeMLMonitor monitor(monitor_options);
  monitor.set_pipeline_name(pipeline_name);
  SpeechPipelineOptions opts;
  opts.graph = &graph;
  opts.resolver = &resolver;
  opts.preprocess = preprocess;
  opts.monitor = &monitor;
  SpeechPipeline pipeline(opts);
  for (const SpeechExample& w : waves) {
    pipeline.process_frame(w.wave);
  }
  return monitor.take_trace();
}

double trace_accuracy(const Trace& trace, const std::vector<int>& labels) {
  MLX_CHECK_EQ(trace.frames.size(), labels.size());
  if (trace.frames.empty()) return 0.0;
  int correct = 0;
  for (std::size_t i = 0; i < trace.frames.size(); ++i) {
    if (static_cast<int>(trace.frames[i].scalar(trace_keys::kPredictedLabel)) ==
        labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace mlexray
