// DriftAggregator: fleet-scale merge of per-layer digest streams.
//
// The paper's validation compares exactly two traces. A fleet produces
// thousands: one .mlxtrace per device/session, each frame carrying per-layer
// digests (trace format v2) instead of raw tensors. The aggregator merges
// every device's digest stream — LayerDigest::merge is associative, so a
// device's frames collapse into one digest per layer, and shard merges equal
// a merge over the concatenated stream up to the sketch's rank-error bound —
// then scores each device's per-layer distributional drift against a
// reference trace and rolls the results up into a FleetReport:
//
//  - per-layer drift distribution across devices (min / p50 / p90 / max);
//  - outlier-device ranking by worst-layer drift;
//  - per-device and modal fleet-wide first-suspect localization (Fig-6
//    style, but over distributions instead of paired tensors).
//
// The reference may be a digest trace or a raw per-layer-output trace (the
// aggregator digests raw tensors on the fly), so a workstation-recorded
// reference run needs no special capture mode. `mlexray_cli fleet-report`
// is the command-line front end.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/trace.h"

namespace mlexray {

// Per-layer digests for one frame: the wire digests when the frame carries
// them (aligned with layer_names), else digests computed here from the raw
// layer outputs. Empty when the frame has neither. Also the bridge tests use
// to compare sketch-merged fleet stats against exact offline stats.
std::vector<LayerDigest> frame_layer_digests(const FrameTrace& frame);

struct FleetLayerDrift {
  std::string layer;
  std::size_t devices = 0;  // devices whose traces cover this layer
  double min_drift = 0.0;
  double p50_drift = 0.0;
  double p90_drift = 0.0;
  double max_drift = 0.0;
  bool suspect = false;  // p50 above threshold: a fleet-wide issue, not one
                         // bad device (those surface in the outlier ranking)
};

struct FleetDeviceDrift {
  std::string device_id;
  std::size_t frames = 0;
  double max_drift = 0.0;   // worst layer's drift
  std::string worst_layer;
  std::optional<std::string> first_suspect;  // per-device localization
};

struct FleetReport {
  std::size_t devices = 0;
  std::size_t frames = 0;  // across all devices
  double threshold = 0.0;
  std::vector<FleetLayerDrift> layers;     // reference execution order
  std::vector<FleetDeviceDrift> outliers;  // ranked worst-first
  // Most common per-device first suspect — the fleet's Fig-6 verdict.
  std::optional<std::string> first_suspect;
};

class DriftAggregator {
 public:
  // threshold: drift above which a layer is a suspect (same normalization as
  // the paper's rMSE-hat, so per_layer_drift thresholds carry over).
  explicit DriftAggregator(double threshold = 0.1)
      : threshold_(threshold) {}

  // The trusted baseline every device is scored against. Its frames' digests
  // merge into one reference digest per layer; layer order is taken from the
  // reference's first per-layer frame. Must be called before report().
  void set_reference(const Trace& reference);

  // Folds one device's trace in: all frames' digests merge into the device's
  // running per-layer digest. Repeated calls with the same device_id keep
  // merging (a device may ship many spool files).
  void add_trace(const std::string& device_id, const Trace& trace);

  std::size_t device_count() const { return devices_.size(); }
  std::size_t frame_count() const { return frames_; }

  FleetReport report() const;

 private:
  struct DeviceState {
    std::size_t frames = 0;
    std::map<std::string, LayerDigest> layers;
  };

  double threshold_;
  std::vector<std::string> reference_order_;
  std::map<std::string, LayerDigest> reference_;
  std::map<std::string, DeviceState> devices_;
  std::size_t frames_ = 0;
};

// Renders the report as the CLI's fleet-report text (top `max_outliers`
// devices; 0 = all).
std::string render_fleet_report(const FleetReport& report,
                                std::size_t max_outliers = 10);

}  // namespace mlexray
