#include "src/drift/aggregator.h"

#include <algorithm>
#include <sstream>

#include "src/drift/digest.h"

namespace mlexray {

namespace {

// Nearest-rank quantile over an already-sorted sample.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void merge_frame_into(std::map<std::string, LayerDigest>& layers,
                      const FrameTrace& frame) {
  const std::vector<LayerDigest> digests = frame_layer_digests(frame);
  for (std::size_t i = 0; i < digests.size(); ++i) {
    auto [it, inserted] = layers.try_emplace(frame.layer_names[i]);
    if (inserted) {
      it->second = digests[i];
    } else {
      it->second.merge(digests[i]);
    }
  }
}

}  // namespace

std::vector<LayerDigest> frame_layer_digests(const FrameTrace& frame) {
  if (!frame.layer_digests.empty()) {
    MLX_CHECK_EQ(frame.layer_digests.size(), frame.layer_names.size())
        << "digest frame out of step with its layer names";
    return frame.layer_digests;
  }
  std::vector<LayerDigest> digests;
  digests.reserve(frame.layer_outputs.size());
  for (const Tensor& t : frame.layer_outputs) {
    LayerDigest d;
    d.reset();
    d.accumulate(t);
    digests.push_back(d);
  }
  if (!digests.empty()) {
    MLX_CHECK_EQ(digests.size(), frame.layer_names.size())
        << "per-layer outputs out of step with their layer names";
  }
  return digests;
}

void DriftAggregator::set_reference(const Trace& reference) {
  reference_order_.clear();
  reference_.clear();
  for (const FrameTrace& frame : reference.frames) {
    if (reference_order_.empty() && !frame.layer_names.empty()) {
      reference_order_ = frame.layer_names;
    }
    merge_frame_into(reference_, frame);
  }
  MLX_CHECK(!reference_.empty())
      << "reference trace carries no per-layer digests or outputs";
}

void DriftAggregator::add_trace(const std::string& device_id,
                                const Trace& trace) {
  DeviceState& device = devices_[device_id];
  for (const FrameTrace& frame : trace.frames) {
    merge_frame_into(device.layers, frame);
  }
  device.frames += trace.frames.size();
  frames_ += trace.frames.size();
}

FleetReport DriftAggregator::report() const {
  MLX_CHECK(!reference_.empty()) << "set_reference before report";
  FleetReport report;
  report.devices = devices_.size();
  report.frames = frames_;
  report.threshold = threshold_;

  // Per-device pass: drift of every covered layer, worst layer, and the
  // first suspect in reference execution order.
  std::map<std::string, std::vector<double>> drift_by_layer;
  for (const auto& [device_id, device] : devices_) {
    FleetDeviceDrift row;
    row.device_id = device_id;
    row.frames = device.frames;
    for (const std::string& layer : reference_order_) {
      const auto ref_it = reference_.find(layer);
      const auto dev_it = device.layers.find(layer);
      if (ref_it == reference_.end() || dev_it == device.layers.end()) {
        continue;
      }
      const double drift = digest_drift(dev_it->second, ref_it->second);
      drift_by_layer[layer].push_back(drift);
      if (row.worst_layer.empty() || drift > row.max_drift) {
        row.max_drift = drift;
        row.worst_layer = layer;
      }
      if (!row.first_suspect.has_value() && drift > threshold_) {
        row.first_suspect = layer;
      }
    }
    report.outliers.push_back(std::move(row));
  }
  std::stable_sort(report.outliers.begin(), report.outliers.end(),
                   [](const FleetDeviceDrift& a, const FleetDeviceDrift& b) {
                     return a.max_drift > b.max_drift;
                   });

  // Per-layer distribution across the fleet.
  for (const std::string& layer : reference_order_) {
    const auto it = drift_by_layer.find(layer);
    if (it == drift_by_layer.end()) continue;
    std::vector<double>& drifts = it->second;
    std::sort(drifts.begin(), drifts.end());
    FleetLayerDrift row;
    row.layer = layer;
    row.devices = drifts.size();
    row.min_drift = drifts.front();
    row.max_drift = drifts.back();
    row.p50_drift = sorted_quantile(drifts, 0.5);
    row.p90_drift = sorted_quantile(drifts, 0.9);
    row.suspect = row.p50_drift > threshold_;
    report.layers.push_back(std::move(row));
  }

  // Fleet verdict: the most common per-device first suspect (ties broken by
  // reference execution order, same as the offline report's bias toward the
  // earliest divergent layer).
  std::map<std::string, std::size_t> votes;
  for (const FleetDeviceDrift& device : report.outliers) {
    if (device.first_suspect.has_value()) ++votes[*device.first_suspect];
  }
  std::size_t best = 0;
  for (const std::string& layer : reference_order_) {
    const auto it = votes.find(layer);
    if (it != votes.end() && it->second > best) {
      best = it->second;
      report.first_suspect = layer;
    }
  }
  return report;
}

std::string render_fleet_report(const FleetReport& report,
                                std::size_t max_outliers) {
  std::ostringstream out;
  out << "fleet drift report: " << report.devices << " device(s), "
      << report.frames << " frame(s), threshold " << report.threshold << "\n";
  if (report.first_suspect.has_value()) {
    out << "fleet first suspect: " << *report.first_suspect << "\n";
  } else {
    out << "fleet first suspect: none\n";
  }
  out << "\nper-layer drift across devices (min/p50/p90/max):\n";
  for (const FleetLayerDrift& layer : report.layers) {
    out << "  " << (layer.suspect ? "[SUSPECT] " : "          ") << layer.layer
        << "  " << layer.min_drift << " / " << layer.p50_drift << " / "
        << layer.p90_drift << " / " << layer.max_drift << "  ("
        << layer.devices << " device(s))\n";
  }
  out << "\noutlier devices (worst first):\n";
  std::size_t shown = 0;
  for (const FleetDeviceDrift& device : report.outliers) {
    if (max_outliers != 0 && shown++ >= max_outliers) {
      out << "  ... " << (report.outliers.size() - max_outliers)
          << " more device(s)\n";
      break;
    }
    out << "  " << device.device_id << "  max drift " << device.max_drift
        << " at " << device.worst_layer;
    if (device.first_suspect.has_value()) {
      out << ", first suspect " << *device.first_suspect;
    }
    out << " (" << device.frames << " frame(s))\n";
  }
  return out.str();
}

}  // namespace mlexray
