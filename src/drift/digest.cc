#include "src/drift/digest.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/common/file_io.h"

namespace mlexray {

// --- QuantileSketch ---------------------------------------------------------

void QuantileSketch::reset() {
  std::memset(size_, 0, sizeof(size_));
  top_shift_ = 0;
  rng_ = 0x9e3779b9u;
}

namespace {

// Merges two sorted runs into `dst` (which may alias `b`). Stack temp only —
// the hot path stays allocation-free.
int merge_sorted_runs(const float* a, int na, const float* b, int nb,
                      float* dst) {
  float out[QuantileSketch::kLevelCap];
  int i = 0, j = 0, o = 0;
  while (i < na && j < nb) out[o++] = a[i] <= b[j] ? a[i++] : b[j++];
  while (i < na) out[o++] = a[i++];
  while (j < nb) out[o++] = b[j++];
  std::memcpy(dst, out, static_cast<std::size_t>(o) * sizeof(float));
  return o;
}

}  // namespace

void QuantileSketch::compact(int level) {
  // Promoting into a full next level cascades first, so there is always room
  // for the survivors.
  if (level + 1 < kLevels && size_[level + 1] > kLevelCap - kLevelCap / 2) {
    compact(level + 1);
  }
  float* items = items_[level];
  // Invariant: levels >= 1 are always sorted (promotion emits a sorted run
  // merged into a sorted level), so only level 0 — the only level that sees
  // raw inserts — ever pays a sort. This is the difference between ~25ns and
  // ~10ns per add, and the always-on capture budget is priced on the latter.
  if (level == 0) std::sort(items, items + size_[0]);
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 17;
  rng_ ^= rng_ << 5;
  const int offset = static_cast<int>(rng_ & 1u);
  if (level + 1 < kLevels) {
    float survivors[kLevelCap];
    int ns = 0;
    for (int i = offset; i < size_[level]; i += 2) survivors[ns++] = items[i];
    size_[level + 1] = static_cast<std::uint16_t>(
        merge_sorted_runs(survivors, ns, items_[level + 1], size_[level + 1],
                          items_[level + 1]));
  } else {
    // Top level compacts in place: survivors stay but each now stands for
    // twice the weight (top_shift_).
    int kept = 0;
    for (int i = offset; i < size_[level]; i += 2) items[kept++] = items[i];
    size_[level] = static_cast<std::uint16_t>(kept);
    ++top_shift_;
    return;
  }
  size_[level] = 0;
}

void QuantileSketch::add(float v) {
  if (size_[0] == kLevelCap) compact(0);
  items_[0][size_[0]++] = v;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  // Items at level l keep their weight (2^l) when inserted at our level l.
  // Shifted top levels (streams past ~2M items) are first equalized by
  // coarsening our own top until the shifts line up, so top items from both
  // sides carry the same weight; sketches that never saturated (every test
  // and every per-frame capture) always merge with shift 0 on both sides.
  while (top_shift_ < other.top_shift_) {
    if (size_[kLevels - 1] > 1) {
      compact(kLevels - 1);
    } else {
      top_shift_ = other.top_shift_;
    }
  }
  // Level 0 is unsorted on both sides: plain append. Levels >= 1 hold sorted
  // runs on both sides: compact ours if the combined run would overflow,
  // then a single sorted merge keeps the invariant.
  for (int i = 0; i < other.size_[0]; ++i) {
    if (size_[0] == kLevelCap) compact(0);
    items_[0][size_[0]++] = other.items_[0][i];
  }
  for (int l = 1; l < kLevels; ++l) {
    if (other.size_[l] == 0) continue;
    while (size_[l] + other.size_[l] > kLevelCap) compact(l);
    size_[l] = static_cast<std::uint16_t>(
        merge_sorted_runs(other.items_[l], other.size_[l], items_[l],
                          size_[l], items_[l]));
  }
}

std::uint64_t QuantileSketch::weight() const {
  std::uint64_t total = 0;
  for (int l = 0; l < kLevels; ++l) {
    std::uint64_t w = 1ull << l;
    if (l == kLevels - 1) w <<= top_shift_;
    total += w * size_[l];
  }
  return total;
}

float QuantileSketch::quantile(double q) const {
  struct Entry {
    float value;
    std::uint64_t weight;
  };
  Entry entries[kLevels * kLevelCap];
  int n = 0;
  std::uint64_t total = 0;
  for (int l = 0; l < kLevels; ++l) {
    std::uint64_t w = 1ull << l;
    if (l == kLevels - 1) w <<= top_shift_;
    for (int i = 0; i < size_[l]; ++i) {
      entries[n++] = {items_[l][i], w};
      total += w;
    }
  }
  if (n == 0) return 0.0f;
  std::sort(entries, entries + n,
            [](const Entry& a, const Entry& b) { return a.value < b.value; });
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (int i = 0; i < n; ++i) {
    cum += entries[i].weight;
    if (static_cast<double>(cum) >= target) return entries[i].value;
  }
  return entries[n - 1].value;
}

void QuantileSketch::serialize(BinaryWriter& w) const {
  w.write_u32(kLevels);
  w.write_u32(kLevelCap);
  w.write_u32(top_shift_);
  for (int l = 0; l < kLevels; ++l) {
    w.write_u32(size_[l]);
    for (int i = 0; i < size_[l]; ++i) w.write_f32(items_[l][i]);
  }
}

void QuantileSketch::deserialize(BinaryReader& r) {
  reset();
  MLX_CHECK_EQ(r.read_u32(), static_cast<std::uint32_t>(kLevels))
      << "quantile sketch level mismatch";
  MLX_CHECK_EQ(r.read_u32(), static_cast<std::uint32_t>(kLevelCap))
      << "quantile sketch capacity mismatch";
  top_shift_ = static_cast<std::uint16_t>(r.read_u32());
  for (int l = 0; l < kLevels; ++l) {
    const std::uint32_t n = r.read_u32();
    MLX_CHECK_LE(n, static_cast<std::uint32_t>(kLevelCap))
        << "quantile sketch level overflow";
    size_[l] = static_cast<std::uint16_t>(n);
    for (std::uint32_t i = 0; i < n; ++i) items_[l][i] = r.read_f32();
    // Re-establish the sorted-level invariant on the cold path rather than
    // trusting the writer (levels >= 1 must stay sorted for merge/compact).
    if (l >= 1) std::sort(items_[l], items_[l] + size_[l]);
  }
}

// --- LayerDigest ------------------------------------------------------------

void LayerDigest::reset() {
  dtype = DType::kF32;
  count = 0;
  sum = 0.0;
  sum_sq = 0.0;
  min_v = std::numeric_limits<float>::infinity();
  max_v = -std::numeric_limits<float>::infinity();
  sketch.reset();
  std::memset(hist, 0, sizeof(hist));
  isum = 0;
  isum_sq = 0;
  scale = 0.0f;
  zero_point = 0;
}

namespace {

// Deterministic stride that caps one accumulate() call at `budget` samples:
// ceil(n / budget) skips enough elements that at most `budget` survive.
std::int64_t sample_stride(std::int64_t n, std::int64_t budget) {
  return n <= budget ? 1 : (n + budget - 1) / budget;
}

// Moments over every element. Partials are combined in a fixed order so the
// result is deterministic for a given build; the AVX2 path widens each f32
// lane to f64 before accumulating, same as the scalar path.
void accumulate_f32(LayerDigest& d, const float* p, std::int64_t n) {
  double sum = 0.0, sum_sq = 0.0;
  float mn = d.min_v, mx = d.max_v;
  std::int64_t i = 0;
#if defined(__AVX2__)
  if (n >= 8) {
    __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
    __m256d q0 = _mm256_setzero_pd(), q1 = _mm256_setzero_pd();
    __m256 vmn = _mm256_set1_ps(mn);
    __m256 vmx = _mm256_set1_ps(mx);
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(p + i);
      vmn = _mm256_min_ps(vmn, v);
      vmx = _mm256_max_ps(vmx, v);
      const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
      const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
      s0 = _mm256_add_pd(s0, lo);
      s1 = _mm256_add_pd(s1, hi);
      q0 = _mm256_add_pd(q0, _mm256_mul_pd(lo, lo));
      q1 = _mm256_add_pd(q1, _mm256_mul_pd(hi, hi));
    }
    alignas(32) double sb[4], qb[4];
    alignas(32) float nb[8], xb[8];
    _mm256_store_pd(sb, _mm256_add_pd(s0, s1));
    _mm256_store_pd(qb, _mm256_add_pd(q0, q1));
    _mm256_store_ps(nb, vmn);
    _mm256_store_ps(xb, vmx);
    sum = (sb[0] + sb[1]) + (sb[2] + sb[3]);
    sum_sq = (qb[0] + qb[1]) + (qb[2] + qb[3]);
    for (int l = 0; l < 8; ++l) {
      mn = std::min(mn, nb[l]);
      mx = std::max(mx, xb[l]);
    }
  }
#else
  // Four-way accumulators break the serial dependency chain.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    const float a = p[i], b = p[i + 1], c = p[i + 2], e = p[i + 3];
    s0 += a; s1 += b; s2 += c; s3 += e;
    q0 += static_cast<double>(a) * a;
    q1 += static_cast<double>(b) * b;
    q2 += static_cast<double>(c) * c;
    q3 += static_cast<double>(e) * e;
    mn = std::min(mn, std::min(std::min(a, b), std::min(c, e)));
    mx = std::max(mx, std::max(std::max(a, b), std::max(c, e)));
  }
  sum = (s0 + s1) + (s2 + s3);
  sum_sq = (q0 + q1) + (q2 + q3);
#endif
  for (; i < n; ++i) {
    const float a = p[i];
    sum += a;
    sum_sq += static_cast<double>(a) * a;
    mn = std::min(mn, a);
    mx = std::max(mx, a);
  }
  d.sum += sum;
  d.sum_sq += sum_sq;
  d.min_v = mn;
  d.max_v = mx;
  // The sketch samples a deterministic stride so capture cost stays bounded
  // no matter the layer size; quantile resolution accrues as frames merge
  // (per-device digests stack kSketchSampleBudget samples per layer per
  // frame). The moments above stay exact over every element.
  const std::int64_t stride =
      sample_stride(n, LayerDigest::kSketchSampleBudget);
  for (std::int64_t k = 0; k < n; k += stride) d.sketch.add(p[k]);
}

// i8/u8 histogram path. One accumulate() call digests at most
// kIntHistSampleBudget elements, so the scratch histogram is a single 1KB
// u32 array (zeroing a wider split-histogram scratch would cost more than
// the budgeted increments) and integer moments are derived from the bins
// afterwards, branchlessly — exact over the sampled elements, since a bin
// fully determines its value. i8 raw bytes map to bin raw+128, which in
// two's complement is the byte XOR 0x80; u8 bytes are their own bin.
// Returns the number of elements digested (n, or the stride-sampled subset
// for layers past the budget).
template <bool kSigned>
std::int64_t accumulate_int8(LayerDigest& d, const std::uint8_t* p,
                             std::int64_t n) {
  constexpr std::uint8_t kBias = kSigned ? 0x80 : 0x00;
  std::uint32_t lh[256] = {};
  const std::int64_t stride =
      sample_stride(n, LayerDigest::kIntHistSampleBudget);
  std::int64_t sampled = 0;
  if (stride == 1) {
    for (std::int64_t i = 0; i < n; ++i) {
      ++lh[static_cast<std::uint8_t>(p[i] ^ kBias)];
    }
    sampled = n;
  } else {
    for (std::int64_t k = 0; k < n; k += stride) {
      ++lh[static_cast<std::uint8_t>(p[k] ^ kBias)];
      ++sampled;
    }
  }
  std::int64_t isum = 0;
  std::uint64_t isum_sq = 0;
  for (int b = 0; b < 256; ++b) {
    const std::uint64_t c = lh[b];
    d.hist[b] += c;
    const std::int64_t v = kSigned ? b - 128 : b;
    isum += v * static_cast<std::int64_t>(c);
    isum_sq += static_cast<std::uint64_t>(v * v) * c;
  }
  d.isum += isum;
  d.isum_sq += isum_sq;
  return sampled;
}

}  // namespace

void LayerDigest::accumulate(const Tensor& t) {
  const std::int64_t n = t.num_elements();
  if (count == 0) {
    dtype = t.dtype();
    if (t.quant().quantized()) {
      scale = t.quant().scale();
      zero_point = t.quant().zero_point();
    }
  }
  switch (t.dtype()) {
    case DType::kI8:
      count += static_cast<std::uint64_t>(accumulate_int8<true>(
          *this, reinterpret_cast<const std::uint8_t*>(t.data<std::int8_t>()),
          n));
      break;
    case DType::kU8:
      count += static_cast<std::uint64_t>(
          accumulate_int8<false>(*this, t.data<std::uint8_t>(), n));
      break;
    case DType::kF32:
      accumulate_f32(*this, t.data<float>(), n);
      count += static_cast<std::uint64_t>(n);
      break;
    case DType::kI32: {
      // Rare as a layer output (integer bookkeeping); digested through the
      // float path, value-exact up to f32 rounding.
      const std::int32_t* p = t.data<std::int32_t>();
      double s = 0.0, q = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float v = static_cast<float>(p[i]);
        s += v;
        q += static_cast<double>(v) * v;
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
      }
      sum += s;
      sum_sq += q;
      const std::int64_t stride = sample_stride(n, kSketchSampleBudget);
      for (std::int64_t k = 0; k < n; k += stride) {
        sketch.add(static_cast<float>(p[k]));
      }
      count += static_cast<std::uint64_t>(n);
      break;
    }
  }
}

void LayerDigest::merge(const LayerDigest& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  MLX_CHECK(dtype == other.dtype)
      << "cannot merge digests of different dtypes";
  count += other.count;
  if (integer_path()) {
    for (int b = 0; b < 256; ++b) hist[b] += other.hist[b];
    isum += other.isum;
    isum_sq += other.isum_sq;
    // Quant params may drift between devices; keep the first seen (drift in
    // the params themselves shows up as value drift after dequantization
    // only if callers compare digests with their own params — the aggregator
    // flags mismatched scales instead of silently mixing them).
  } else {
    sum += other.sum;
    sum_sq += other.sum_sq;
    min_v = std::min(min_v, other.min_v);
    max_v = std::max(max_v, other.max_v);
    sketch.merge(other.sketch);
  }
}

namespace {
double dequant(double raw, float scale, std::int32_t zero_point) {
  if (scale == 0.0f) return raw;  // unquantized u8 (raw sensor bytes)
  return static_cast<double>(scale) * (raw - zero_point);
}
}  // namespace

double LayerDigest::mean() const {
  if (count == 0) return 0.0;
  if (integer_path()) {
    return dequant(static_cast<double>(isum) / static_cast<double>(count),
                   scale, zero_point);
  }
  return sum / static_cast<double>(count);
}

double LayerDigest::stddev() const {
  if (count == 0) return 0.0;
  double var;
  if (integer_path()) {
    const double m = static_cast<double>(isum) / static_cast<double>(count);
    var = static_cast<double>(isum_sq) / static_cast<double>(count) - m * m;
    const double s = scale == 0.0f ? 1.0 : static_cast<double>(scale);
    var *= s * s;
  } else {
    const double m = sum / static_cast<double>(count);
    var = sum_sq / static_cast<double>(count) - m * m;
  }
  return std::sqrt(std::max(var, 0.0));
}

double LayerDigest::real_min() const {
  if (count == 0) return 0.0;
  if (integer_path()) {
    for (int b = 0; b < 256; ++b) {
      if (hist[b] != 0) {
        const int raw = dtype == DType::kI8 ? b - 128 : b;
        return dequant(raw, scale, zero_point);
      }
    }
    return 0.0;
  }
  return min_v;
}

double LayerDigest::real_max() const {
  if (count == 0) return 0.0;
  if (integer_path()) {
    for (int b = 255; b >= 0; --b) {
      if (hist[b] != 0) {
        const int raw = dtype == DType::kI8 ? b - 128 : b;
        return dequant(raw, scale, zero_point);
      }
    }
    return 0.0;
  }
  return max_v;
}

double LayerDigest::quantile(double q) const {
  if (count == 0) return 0.0;
  if (integer_path()) {
    const double target =
        std::clamp(q, 0.0, 1.0) * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (int b = 0; b < 256; ++b) {
      cum += hist[b];
      if (static_cast<double>(cum) >= target && cum > 0) {
        const int raw = dtype == DType::kI8 ? b - 128 : b;
        return dequant(raw, scale, zero_point);
      }
    }
    return real_max();
  }
  return static_cast<double>(sketch.quantile(q));
}

void serialize_digest(BinaryWriter& w, const LayerDigest& d) {
  w.write_u8(static_cast<std::uint8_t>(d.dtype));
  w.write_u64(d.count);
  if (d.integer_path()) {
    w.write_f32(d.scale);
    w.write_i32(d.zero_point);
    w.write_i64(d.isum);
    w.write_u64(d.isum_sq);
    // Sparse bin encoding: most layers occupy a fraction of the 256-value
    // domain. A per-frame bin never exceeds u32 (a frame holds < 4G
    // elements); merged in-memory digests are not re-serialized.
    std::uint32_t used = 0;
    for (int b = 0; b < 256; ++b) {
      if (d.hist[b] != 0) ++used;
    }
    w.write_u32(used);
    for (int b = 0; b < 256; ++b) {
      if (d.hist[b] == 0) continue;
      MLX_CHECK_LE(d.hist[b], 0xffffffffull)
          << "histogram bin exceeds the u32 wire format";
      w.write_u8(static_cast<std::uint8_t>(b));
      w.write_u32(static_cast<std::uint32_t>(d.hist[b]));
    }
  } else {
    w.write_f64(d.sum);
    w.write_f64(d.sum_sq);
    w.write_f32(d.min_v);
    w.write_f32(d.max_v);
    d.sketch.serialize(w);
  }
}

LayerDigest deserialize_digest(BinaryReader& r) {
  LayerDigest d;
  d.reset();
  d.dtype = static_cast<DType>(r.read_u8());
  d.count = r.read_u64();
  if (d.integer_path()) {
    d.scale = r.read_f32();
    d.zero_point = r.read_i32();
    d.isum = r.read_i64();
    d.isum_sq = r.read_u64();
    const std::uint32_t used = r.read_u32();
    MLX_CHECK_LE(used, 256u) << "histogram bin count out of range";
    for (std::uint32_t i = 0; i < used; ++i) {
      const std::uint8_t b = r.read_u8();
      d.hist[b] = r.read_u32();
    }
  } else {
    d.sum = r.read_f64();
    d.sum_sq = r.read_f64();
    d.min_v = r.read_f32();
    d.max_v = r.read_f32();
    d.sketch.deserialize(r);
  }
  return d;
}

double digest_drift(const LayerDigest& device, const LayerDigest& reference) {
  if (device.count == 0 || reference.count == 0) return 0.0;
  // Quantile grid: dense enough to see shape changes, sparse enough to stay
  // cheap at fleet scale.
  static constexpr double kGrid[] = {0.01, 0.05, 0.10, 0.20, 0.30, 0.40,
                                     0.50, 0.60, 0.70, 0.80, 0.90, 0.95,
                                     0.99};
  constexpr int kPoints = static_cast<int>(sizeof(kGrid) / sizeof(kGrid[0]));
  const double range = reference.real_max() - reference.real_min();
  double sq = 0.0;
  for (double q : kGrid) {
    const double diff = device.quantile(q) - reference.quantile(q);
    sq += diff * diff;
  }
  const double rms = std::sqrt(sq / kPoints);
  if (range <= 0.0) {
    return rms == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return rms / range;
}

double digest_tv_distance(const LayerDigest& a, const LayerDigest& b) {
  if (!a.integer_path() || !b.integer_path()) return 0.0;
  if (a.count == 0 || b.count == 0) return 0.0;
  double tv = 0.0;
  for (int bin = 0; bin < 256; ++bin) {
    const double pa =
        static_cast<double>(a.hist[bin]) / static_cast<double>(a.count);
    const double pb =
        static_cast<double>(b.hist[bin]) / static_cast<double>(b.count);
    tv += std::abs(pa - pb);
  }
  return 0.5 * tv;
}

}  // namespace mlexray
