// Engine canary mode: online Fig-6 drift localization in the serving path.
//
// The paper's per-layer validation is offline and pairwise — record full
// traces on two pipelines, diff later. Canary mode streams the same signal
// live: the Engine shadows a sampled fraction of production invokes through
// a Session built from a *reference* graph + resolver (e.g. the float model,
// or the production graph under the reference kernel set), replays the
// production inputs, and accumulates per-layer normalized RMSE between the
// production activations and the reference's. The running report localizes
// the first divergent layer in execution order — the same verdict
// DeploymentValidator::per_layer_drift reaches offline, but without raw
// tensor capture and while the model keeps serving.
//
// Sampling contract: shadowing happens on the releasing thread when a lease
// comes home, 1 out of every CanaryOptions::shadow_every releases whose
// invoke completed cleanly (partial frames from deadline expiry or contained
// faults are never diffed). One reference session is shared per model name;
// if another release is mid-shadow the sample is dropped and counted
// (skipped_busy) instead of blocking the pool. The canary survives hot-swaps
// — layers are re-mapped to the new serving version by node name, and layers
// the reference cannot map are skipped (skipped_layout counts whole frames
// whose input layout no longer matches).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace mlexray {

struct CanaryOptions {
  // Shadow 1 out of every N cleanly-completed releases (1 = every invoke).
  std::uint32_t shadow_every = 8;
  // A layer whose running mean normalized RMSE exceeds this is a suspect;
  // the first suspect in execution order is the Fig-6 localization. Matches
  // per_layer_drift's default so online and offline verdicts compare.
  double drift_threshold = 0.1;
};

// One layer's running drift, in reference execution order.
struct CanaryLayerDrift {
  std::string layer;
  double mean_error = 0.0;     // running mean normalized RMSE vs reference
  std::uint64_t samples = 0;   // shadowed frames that compared this layer
  bool suspect = false;        // mean_error > threshold
};

struct CanaryReport {
  bool enabled = false;
  std::uint64_t shadowed = 0;          // frames diffed against the reference
  std::uint64_t skipped_busy = 0;      // reference session held by another shadow
  std::uint64_t skipped_layout = 0;    // input layout mismatch after a hot-swap
  std::uint64_t reference_errors = 0;  // reference invoke failures
  double threshold = 0.0;
  std::vector<CanaryLayerDrift> layers;
  // First layer in execution order whose running mean exceeds the threshold
  // — the online counterpart of PerLayerReport::first_suspect.
  std::optional<std::string> first_suspect;
};

// Fired on the releasing thread after each shadowed frame (sampled slow
// path — allocation is fine, but the hook must not call back into the
// Engine's lease API for the same model).
struct CanaryShadowEvent {
  std::uint64_t shadow_index = 0;  // 1-based count of shadowed frames
  double max_layer_error = 0.0;    // worst single-layer error this frame
  // First layer whose error exceeded the threshold in *this* frame; empty
  // when the frame tracked the reference everywhere.
  std::string first_divergent_layer;
  int first_divergent_step = -1;
};

using CanaryObserver = std::function<void(const CanaryShadowEvent&)>;

}  // namespace mlexray
