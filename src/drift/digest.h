// Streaming per-layer digests: compact, mergeable sketches of a layer's
// output distribution, cheap enough for always-on fleet monitoring.
//
// The paper's validation workflow diffs *full* per-layer tensors between two
// pipelines — exact, but too heavy to leave enabled in serving (a raw-output
// trace frame is the size of the model's activations) and structurally
// pairwise. A LayerDigest replaces the raw tensor with a fixed-size summary
// captured in the TraceBuffer observer path:
//
//  - count / sum / sum-of-squares / min / max (exact moments for float
//    layers, over every element);
//  - a small KLL-style quantile sketch for float layers (fixed storage,
//    mergeable: merging shard sketches is equivalent — up to the sketch's
//    rank-error bound — to sketching the concatenated stream);
//  - a 256-bin histogram for int8/uint8 layers (the value domain is the bin
//    domain, so quantiles and moments derived from it are exact over the
//    digested elements and merge losslessly).
//
// Capture cost is bounded per accumulate() call, not per element: the float
// sketch draws at most kSketchSampleBudget stride-spaced samples, and int8
// layers larger than kIntHistSampleBudget are stride-sampled into the
// histogram (smaller layers are digested exactly). Per-frame resolution is
// deliberately coarse — a fleet digest stream merges hundreds of frames per
// device, so quantile resolution accrues where it matters while the hot-path
// cost stays a small fraction of a bare invoke (see bench_drift's gate).
//
// Everything is inline fixed-size storage: accumulate() performs zero heap
// allocations, so digest capture rides the zero-alloc invoke contract the
// observer pipeline enforces. Digests ride in .mlxtrace frames (trace format
// v2) next to latencies, and the DriftAggregator merges digest streams from
// many devices into fleet drift reports.
//
// What a distribution sketch can and cannot see: digest_drift() compares
// value distributions, so it catches scale/shift/saturation bugs (wrong
// normalization, bad quant params, clipped activations) but is blind to
// permutations (e.g. channel-order bugs leave the histogram unchanged).
// Elementwise localization of those stays with the exact paths: offline
// per_layer_drift and the Engine canary.
#pragma once

#include <cstdint>
#include <limits>

#include "src/tensor/tensor.h"

namespace mlexray {

class BinaryReader;
class BinaryWriter;

// Fixed-size KLL-style quantile sketch over floats.
//
// Level l holds up to kLevelCap items, each representing 2^l input items.
// add() appends to level 0; a full level is sorted and every other item
// (random offset) is promoted to the next level, halving its size. quantile()
// ranks all retained items by weight. merge() concatenates level-wise and
// recompacts — the operation that makes fleet aggregation associative.
//
// Capacity before the top level saturates is kLevelCap * 2^(kLevels-1)
// (~2.1M items); past that the top level compacts in place and doubles its
// weight via top_shift_, trading a little extra rank error for unbounded
// streams. The expected rank error of a KLL compactor at this geometry is a
// small constant (~1.5/kLevelCap per level pair); tests assert a
// conservative end-to-end bound instead of the tight one.
class QuantileSketch {
 public:
  static constexpr int kLevels = 16;
  static constexpr int kLevelCap = 32;

  QuantileSketch() { reset(); }

  void reset();
  void add(float v);
  void merge(const QuantileSketch& other);

  // Value at quantile q in [0, 1] over the sketched stream. Undefined (0)
  // for an empty sketch.
  float quantile(double q) const;

  // Total weighted item count the sketch represents (== items added, exactly,
  // since compaction preserves weight).
  std::uint64_t weight() const;

  bool empty() const { return weight() == 0; }

  void serialize(BinaryWriter& w) const;
  void deserialize(BinaryReader& r);

 private:
  // Compacts `level` into `level + 1` (or in place at the top), assuming
  // every level above has room or is recursively compacted first.
  void compact(int level);

  float items_[kLevels][kLevelCap];
  std::uint16_t size_[kLevels];
  // Extra weight doublings applied to the top level by in-place compaction.
  std::uint16_t top_shift_ = 0;
  // Deterministic xorshift state for the odd/even survivor choice. Seeded
  // identically everywhere so captures are reproducible.
  std::uint32_t rng_ = 0x9e3779b9u;
};

// One layer's streaming digest. Reset + accumulate per frame on the hot
// path; merge across frames/devices in the aggregator.
struct LayerDigest {
  // Per-accumulate() sampling budgets that bound hot-path capture cost.
  // Layers at or under a budget are digested without sampling; larger layers
  // use a deterministic stride of ceil(n / budget). Sketch insertions are the
  // most expensive per-element operation (~10ns amortized compaction), so
  // the sketch budget is the tightest.
  static constexpr std::int64_t kSketchSampleBudget = 64;
  static constexpr std::int64_t kIntHistSampleBudget = 256;

  DType dtype = DType::kF32;
  // Elements digested. For float layers this is every element (moments are
  // exact); for int8/uint8 layers past kIntHistSampleBudget it is the
  // stride-sampled subset, matching what the histogram and integer moments
  // actually saw.
  std::uint64_t count = 0;

  // Float path (also i32, via conversion): exact moments + quantile sketch.
  double sum = 0.0;
  double sum_sq = 0.0;
  float min_v = std::numeric_limits<float>::infinity();
  float max_v = -std::numeric_limits<float>::infinity();
  QuantileSketch sketch;

  // Integer path (i8/u8): histogram over the 256-value domain plus integer
  // moments, exact over the digested (possibly stride-sampled) elements;
  // bin = raw + 128 for i8, bin = raw for u8.
  // u64 bins so fleet-scale merges cannot overflow (the wire format carries
  // u32 — a single frame never exceeds that).
  std::uint64_t hist[256] = {};
  std::int64_t isum = 0;
  std::uint64_t isum_sq = 0;
  // Dequantization params of the source tensor, so integer digests compare
  // in real space.
  float scale = 0.0f;
  std::int32_t zero_point = 0;

  void reset();

  // Folds `t` into the digest under the sampling budgets above. Zero heap
  // allocations. i8/u8 take the histogram path; f32/i32 take the
  // moments+sketch path (moments always cover every element).
  void accumulate(const Tensor& t);

  // Merges another digest over the same layer (dtype must match; the result
  // summarizes the concatenated streams).
  void merge(const LayerDigest& other);

  // Moments in real (dequantized) space.
  double mean() const;
  double stddev() const;
  double real_min() const;
  double real_max() const;

  // Value at quantile q in real space: sketch-backed for floats (approximate
  // within the KLL rank bound), histogram-backed for integers (exact up to
  // the 1-bin value granularity).
  double quantile(double q) const;

  bool integer_path() const {
    return dtype == DType::kI8 || dtype == DType::kU8;
  }
};

void serialize_digest(BinaryWriter& w, const LayerDigest& d);
LayerDigest deserialize_digest(BinaryReader& r);

// Distributional drift between a device digest and a reference digest over
// the same layer: RMS distance between their quantile curves, normalized by
// the reference value range (the same normalization as the paper's rMSE-hat,
// so thresholds carry over). 0 for identical distributions; +inf when the
// reference range is degenerate but the distributions differ. For integer
// digests the quantile curves are exact, so this is a true (normalized)
// Wasserstein-style distance on the quantile grid.
double digest_drift(const LayerDigest& device, const LayerDigest& reference);

// Total-variation distance (0..1) between two integer digests' histograms;
// returns 0 when either side took the float path.
double digest_tv_distance(const LayerDigest& a, const LayerDigest& b);

}  // namespace mlexray
